#include "obs/export.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <ostream>
#include <sstream>
#include <utility>

#include "obs/json.h"

namespace cbp::obs {

std::vector<NamedEvent> resolve(const TraceSnapshot& snapshot) {
  std::vector<NamedEvent> out;
  out.reserve(snapshot.events.size());
  // Cache id -> name: name_of takes the registry lock.
  std::map<std::uint32_t, std::string> cache;
  for (const Event& e : snapshot.events) {
    auto it = cache.find(e.name_id);
    if (it == cache.end()) {
      it = cache.emplace(e.name_id, Trace::name_of(e.name_id)).first;
    }
    out.push_back(NamedEvent{e, it->second});
  }
  return out;
}

std::vector<NamedEvent> filter_by_name(std::vector<NamedEvent> events,
                                       const std::string& name) {
  events.erase(std::remove_if(events.begin(), events.end(),
                              [&](const NamedEvent& e) {
                                return e.name != name;
                              }),
               events.end());
  return events;
}

void write_json_dump(std::ostream& out, const std::vector<NamedEvent>& events,
                     std::uint64_t dropped) {
  out << "{\"trace\":\"cbp\",\"dropped\":" << dropped << ",\"events\":[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const NamedEvent& e = events[i];
    out << (i == 0 ? "\n" : ",\n")
        << "  {\"t_ns\":" << e.event.time_ns << ",\"name\":\""
        << json::escape(e.name) << "\",\"tid\":" << e.event.tid
        << ",\"kind\":\"" << kind_name(e.event.kind)
        << "\",\"rank\":" << static_cast<int>(e.event.rank)
        << ",\"detail\":" << e.event.detail << "}";
  }
  out << (events.empty() ? "]}\n" : "\n]}\n");
}

namespace {

/// One Chrome trace record, ready to serialize.  Collected first so the
/// stream can be emitted in non-decreasing "ts" order (chrome and the
/// golden test both want monotonic timestamps).
struct ChromeRecord {
  std::uint64_t ts_ns = 0;
  std::uint64_t dur_ns = 0;
  bool duration = false;  // "X" (span) vs "i" (instant)
  std::string name;       // record name ("postponed", "match", ...)
  std::string breakpoint;
  rt::ThreadId tid = 0;
  int rank = -1;
  std::string outcome;  // for spans: match/timeout/cancel/open
};

/// Nanoseconds as a decimal microsecond literal ("289057" -> "289.057").
/// The fraction must be zero-padded: streaming `ns % 1000` raw would
/// render 289057 ns as "289.57" — a different (and non-monotonic)
/// number once parsed.
std::string us_literal(std::uint64_t ns) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  return buffer;
}

void serialize(std::ostream& out, const ChromeRecord& r, bool first) {
  out << (first ? "\n" : ",\n") << "  {\"name\":\""
      << json::escape(r.name) << "\",\"cat\":\"cbp\",\"ph\":\""
      << (r.duration ? 'X' : 'i') << "\",\"ts\":" << us_literal(r.ts_ns)
      << ",";
  if (r.duration) {
    out << "\"dur\":" << us_literal(r.dur_ns) << ",";
  } else {
    out << "\"s\":\"t\",";
  }
  out << "\"pid\":1,\"tid\":" << r.tid << ",\"args\":{\"breakpoint\":\""
      << json::escape(r.breakpoint) << "\"";
  if (r.rank >= 0) out << ",\"rank\":" << r.rank;
  if (!r.outcome.empty()) {
    out << ",\"outcome\":\"" << json::escape(r.outcome) << "\"";
  }
  out << "}}";
}

}  // namespace

void write_chrome_trace(std::ostream& out,
                        const std::vector<NamedEvent>& events,
                        std::uint64_t dropped) {
  std::vector<ChromeRecord> records;
  records.reserve(events.size());
  // Pending postpone per (tid, breakpoint): closed by the next match /
  // timeout / cancel event carrying the same thread and name (the
  // matcher stamps kMatch with the *participant's* tid, so a waiter's
  // span closes even though the waiter never records the match itself).
  std::map<std::pair<rt::ThreadId, std::string>, std::size_t> pending;
  std::uint64_t last_ts = 0;
  for (const NamedEvent& e : events) {
    last_ts = std::max(last_ts, e.event.time_ns);
    const auto key = std::make_pair(e.event.tid, e.name);
    const EventKind kind = e.event.kind;
    if (kind == EventKind::kPostpone) {
      ChromeRecord r;
      r.ts_ns = e.event.time_ns;
      r.duration = true;
      r.name = "postponed";
      r.breakpoint = e.name;
      r.tid = e.event.tid;
      r.rank = e.event.rank;
      r.outcome = "open";
      pending[key] = records.size();
      records.push_back(std::move(r));
      continue;
    }
    if (kind == EventKind::kMatch || kind == EventKind::kTimeout ||
        kind == EventKind::kCancel) {
      auto it = pending.find(key);
      if (it != pending.end()) {
        ChromeRecord& span = records[it->second];
        span.dur_ns = e.event.time_ns - span.ts_ns;
        span.outcome = std::string(kind_name(kind));
        if (kind == EventKind::kMatch) span.rank = e.event.rank;
        pending.erase(it);
      }
      if (kind == EventKind::kTimeout || kind == EventKind::kCancel) {
        continue;  // span outcome covers it; no extra instant
      }
    }
    ChromeRecord r;
    r.ts_ns = e.event.time_ns;
    r.name = std::string(kind_name(kind));
    r.breakpoint = e.name;
    r.tid = e.event.tid;
    r.rank = e.event.rank;
    records.push_back(std::move(r));
  }
  // Close dangling spans at the trace horizon.
  for (const auto& [key, index] : pending) {
    records[index].dur_ns = last_ts - records[index].ts_ns;
  }
  std::stable_sort(records.begin(), records.end(),
                   [](const ChromeRecord& a, const ChromeRecord& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  out << "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"tool\":\"cbp-trace\","
      << "\"dropped\":" << dropped << "},\"traceEvents\":[";
  for (std::size_t i = 0; i < records.size(); ++i) {
    serialize(out, records[i], i == 0);
  }
  out << (records.empty() ? "]}\n" : "\n]}\n");
}

bool read_json_dump(std::istream& in, std::vector<NamedEvent>& events,
                    std::uint64_t& dropped, std::string& error) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  json::ValuePtr root = json::parse(buffer.str(), error);
  if (root == nullptr) return false;
  if (!root->is_object()) {
    error = "top-level value is not an object";
    return false;
  }
  const json::Value* tag = root->get("trace");
  if (tag == nullptr || !tag->is_string() || tag->string != "cbp") {
    error = "not a cbp trace dump (missing \"trace\":\"cbp\")";
    return false;
  }
  if (const json::Value* d = root->get("dropped"); d != nullptr && d->is_number()) {
    dropped += static_cast<std::uint64_t>(d->number);
  }
  const json::Value* list = root->get("events");
  if (list == nullptr || !list->is_array()) {
    error = "missing \"events\" array";
    return false;
  }
  for (const json::ValuePtr& item : list->array) {
    if (!item->is_object()) {
      error = "event is not an object";
      return false;
    }
    NamedEvent e;
    const json::Value* t = item->get("t_ns");
    const json::Value* name = item->get("name");
    const json::Value* tid = item->get("tid");
    const json::Value* kind = item->get("kind");
    if (t == nullptr || !t->is_number() || name == nullptr ||
        !name->is_string() || tid == nullptr || !tid->is_number() ||
        kind == nullptr || !kind->is_string()) {
      error = "event missing t_ns/name/tid/kind";
      return false;
    }
    e.event.time_ns = static_cast<std::uint64_t>(t->number);
    e.name = name->string;
    e.event.tid = static_cast<rt::ThreadId>(tid->number);
    bool known = false;
    for (int k = 0; k < kEventKindCount; ++k) {
      if (kind_name(static_cast<EventKind>(k)) == kind->string) {
        e.event.kind = static_cast<EventKind>(k);
        known = true;
        break;
      }
    }
    if (!known) {
      error = "unknown event kind '" + kind->string + "'";
      return false;
    }
    if (const json::Value* r = item->get("rank"); r != nullptr && r->is_number()) {
      e.event.rank = static_cast<std::int8_t>(r->number);
    }
    if (const json::Value* d = item->get("detail");
        d != nullptr && d->is_number()) {
      e.event.detail = static_cast<std::uint16_t>(d->number);
    }
    events.push_back(std::move(e));
  }
  return true;
}

}  // namespace cbp::obs
