// Minimal JSON DOM used by the observability exporters, the placement
// fusion inputs, and their tests: enough to re-read cbp's own dumps and
// to validate that a Chrome-trace export is well-formed JSON.  Strings
// decode all escapes including \uXXXX (surrogate pairs combine and
// encode as UTF-8; bad hex or unpaired surrogates are parse errors).
// Not a general-purpose library — numbers parsed as double.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace cbp::obs::json {

struct Value;
using ValuePtr = std::shared_ptr<Value>;

struct Value {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<ValuePtr> array;
  std::map<std::string, ValuePtr> object;

  [[nodiscard]] bool is_object() const { return type == Type::kObject; }
  [[nodiscard]] bool is_array() const { return type == Type::kArray; }
  [[nodiscard]] bool is_string() const { return type == Type::kString; }
  [[nodiscard]] bool is_number() const { return type == Type::kNumber; }

  /// Object member or nullptr.
  [[nodiscard]] const Value* get(const std::string& key) const {
    if (type != Type::kObject) return nullptr;
    auto it = object.find(key);
    return it == object.end() ? nullptr : it->second.get();
  }
};

/// Parses `text`; returns nullptr and sets `error` on malformed input.
/// Trailing non-whitespace after the top-level value is an error.
ValuePtr parse(const std::string& text, std::string& error);

/// Escapes a string for embedding in a JSON string literal.
std::string escape(const std::string& raw);

}  // namespace cbp::obs::json
