// Telemetry JSON round-trip — the obs side of the placement feedback
// loop (DESIGN.md §5f).
//
// One recorded batch of runs produces BreakpointTelemetry rows
// (telemetry.h); write_telemetry_json serializes the fields the
// placement layer needs to re-derive T/ignore_first offline, and
// read_telemetry_json parses them back.  The reader tolerates missing
// optional fields (older dumps) but rejects files without the
// `"telemetry":"cbp"` marker.
//
// Schema:
//   { "telemetry": "cbp", "version": 1,
//     "rows": [{ "name", "runs", "runs_hit",
//                "n_steps", "m_visits", "big_m_visits", "pause_steps",
//                "step_gap_ns", "arrivals", "participants", "ignored",
//                "postponed", "timeouts", "total_wait_us",
//                "predicted_btrigger", "observed",
//                "wait_p50_us", "wait_p99_us" }] }
#pragma once

#include <string>
#include <vector>

#include "obs/telemetry.h"

namespace cbp::obs {

/// Serializes rows (deterministic key order, input row order).
std::string write_telemetry_json(
    const std::vector<BreakpointTelemetry>& rows);

/// Parses a dump written by write_telemetry_json.  On success returns
/// true and fills `rows`; on failure returns false and sets `error`.
/// Round-tripped rows carry the model inputs, counters, and observation
/// fields listed in the schema; trace-only fields (histograms,
/// order_p99_us) do not survive the trip and read back as defaults.
bool read_telemetry_json(const std::string& text,
                         std::vector<BreakpointTelemetry>& rows,
                         std::string& error);

}  // namespace cbp::obs
