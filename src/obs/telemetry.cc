#include "obs/telemetry.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

namespace cbp::obs {

namespace {

/// True for event kinds that mark one trigger_here call reaching the
/// slot (used to estimate the per-thread step time).
bool is_trigger_entry(EventKind kind) {
  return kind == EventKind::kArrival || kind == EventKind::kLocalReject;
}

}  // namespace

std::uint64_t mean_step_gap_ns(const std::string& name,
                               const TraceSnapshot& trace) {
  // name_of takes the registry lock; cache the id -> matches verdict.
  std::map<std::uint32_t, bool> matches;
  std::map<rt::ThreadId, std::uint64_t> last_ts;
  std::uint64_t total_gap = 0;
  std::uint64_t gaps = 0;
  for (const Event& e : trace.events) {  // sorted by time_ns
    if (!is_trigger_entry(e.kind)) continue;
    auto it = matches.find(e.name_id);
    if (it == matches.end()) {
      it = matches.emplace(e.name_id, Trace::name_of(e.name_id) == name).first;
    }
    if (!it->second) continue;
    auto [pos, fresh] = last_ts.emplace(e.tid, e.time_ns);
    if (!fresh) {
      if (e.time_ns > pos->second) {
        total_gap += e.time_ns - pos->second;
        ++gaps;
      }
      pos->second = e.time_ns;
    }
  }
  return gaps == 0 ? 0 : total_gap / gaps;
}

model::ModelInputs estimate_inputs(const TelemetryInput& input,
                                   const TraceSnapshot& trace) {
  const std::uint64_t threads = std::max<std::uint64_t>(input.threads, 1);
  const std::uint64_t runs = std::max<std::uint64_t>(input.runs, 1);
  const std::uint64_t per_thread = threads * runs;
  model::ModelInputs m;
  m.n_steps = input.stats.calls / per_thread;
  m.big_m_visits = input.stats.arrivals / per_thread;
  m.m_visits = std::max<std::uint64_t>(input.stats.hits / runs, 1);
  // T in "steps": mean Postponed stay divided by the mean gap between
  // successive trigger events on one thread (one trigger ~ one pass
  // through the instrumented loop ~ one model step for this site).
  const std::uint64_t gap_ns = mean_step_gap_ns(input.name, trace);
  if (gap_ns > 0 && input.stats.postponed > 0 &&
      input.stats.total_wait_us > 0) {
    const std::uint64_t wait_ns =
        static_cast<std::uint64_t>(input.stats.total_wait_us) * 1000 /
        input.stats.postponed;
    m.pause_steps = wait_ns / gap_ns;
  }
  return m;
}

BreakpointTelemetry analyze(const TelemetryInput& input,
                            const TraceSnapshot& trace) {
  BreakpointTelemetry row;
  row.name = input.name;
  row.stats = input.stats;
  row.inputs = estimate_inputs(input, trace);
  row.predicted = model::predicted_hit_rates(row.inputs);
  row.runs = input.runs;
  row.runs_hit = input.runs_hit;
  if (input.runs > 0) {
    row.observed_from_runs = true;
    row.observed = static_cast<double>(input.runs_hit) /
                   static_cast<double>(input.runs);
  } else {
    const std::uint64_t eligible =
        input.stats.arrivals > input.stats.ignored
            ? input.stats.arrivals - input.stats.ignored
            : 0;
    row.observed =
        eligible == 0
            ? 0.0
            : std::min(1.0, static_cast<double>(input.stats.participants) /
                                static_cast<double>(eligible));
  }
  row.wait_p50_us = input.stats.wait_hist.percentile(0.50);
  row.wait_p99_us = input.stats.wait_hist.percentile(0.99);
  row.order_p99_us = input.stats.order_hist.percentile(0.99);
  row.step_gap_ns = mean_step_gap_ns(input.name, trace);
  if (input.stats.pattern_partials > 0) {
    // Per-stage funnel: one kPatternAdvance per consumed event, detail
    // = the run's progress after consuming (1-based).
    std::map<std::uint32_t, bool> matches;
    for (const Event& e : trace.events) {
      if (e.kind != EventKind::kPatternAdvance) continue;
      auto it = matches.find(e.name_id);
      if (it == matches.end()) {
        it = matches.emplace(e.name_id, Trace::name_of(e.name_id) == input.name)
                 .first;
      }
      if (!it->second || e.detail == 0) continue;
      const std::size_t stage = e.detail - 1;
      if (row.pattern_stage_advances.size() <= stage) {
        row.pattern_stage_advances.resize(stage + 1, 0);
      }
      row.pattern_stage_advances[stage] += 1;
    }
  }
  return row;
}

std::string render_report(const std::vector<BreakpointTelemetry>& rows) {
  std::ostringstream out;
  out << "hit-probability telemetry (predicted = \xc2\xa7"
         "3 model on estimated N/M/m/T)\n";
  char line[256];
  std::snprintf(line, sizeof(line),
                "%-24s %10s %8s %5s %8s %11s %11s %9s %10s  %s\n",
                "breakpoint", "N", "M", "m", "T(steps)", "p(unaided)",
                "p(btrigger)", "gain", "observed", "basis");
  out << line;
  for (const BreakpointTelemetry& r : rows) {
    const model::ModelInputs s = r.inputs.sanitized();
    char basis[64];
    if (r.observed_from_runs) {
      std::snprintf(basis, sizeof(basis), "%llu/%llu runs",
                    static_cast<unsigned long long>(r.runs_hit),
                    static_cast<unsigned long long>(r.runs));
    } else {
      std::snprintf(basis, sizeof(basis), "per-arrival");
    }
    std::snprintf(line, sizeof(line),
                  "%-24s %10llu %8llu %5llu %8llu %11.4f %11.4f %8.1fx "
                  "%10.4f  %s\n",
                  r.name.c_str(), static_cast<unsigned long long>(s.n_steps),
                  static_cast<unsigned long long>(s.big_m_visits),
                  static_cast<unsigned long long>(s.m_visits),
                  static_cast<unsigned long long>(s.pause_steps),
                  r.predicted.unaided, r.predicted.btrigger, r.predicted.gain,
                  r.observed, basis);
    out << line;
    std::snprintf(line, sizeof(line),
                  "%-24s   wait p50 %llu us, p99 %llu us; "
                  "match-to-release p99 %llu us\n",
                  "", static_cast<unsigned long long>(r.wait_p50_us),
                  static_cast<unsigned long long>(r.wait_p99_us),
                  static_cast<unsigned long long>(r.order_p99_us));
    out << line;
    if (r.stats.pattern_partials > 0) {
      // The pattern funnel: stage-reach counts, then the two ways a
      // partial match ends short of accept.
      out << "                           pattern stages:";
      if (r.pattern_stage_advances.empty()) {
        out << " (trace off; " << r.stats.pattern_partials << " advances)";
      } else {
        for (std::size_t i = 0; i < r.pattern_stage_advances.size(); ++i) {
          out << ' ' << (i + 1) << ':' << r.pattern_stage_advances[i];
        }
      }
      out << "; rejects " << r.stats.pattern_rejects << ", aborts "
          << r.stats.pattern_aborts << "\n";
    }
  }
  return out.str();
}

}  // namespace cbp::obs
