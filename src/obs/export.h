// Trace exporters (DESIGN.md §5d): plain JSON event dumps and Chrome
// trace-event format (chrome://tracing / Perfetto "Open trace file").
//
// The plain JSON dump is the interchange format: `cbp-trace` can re-read
// one (read_json_dump), merge several, filter by breakpoint name and
// re-emit either format.  The Chrome export renders each postpone →
// (match | timeout | cancel) span as a complete ("X") duration event on
// the waiting thread's track and everything else as instant ("i")
// events, so a hit reads as overlapping "postponed" bars capped by
// match/release markers.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/event.h"
#include "obs/trace.h"

namespace cbp::obs {

/// A resolved event: the interned id replaced by the breakpoint name so
/// exports are self-contained.
struct NamedEvent {
  Event event;
  std::string name;
};

/// Resolves names for a snapshot via Trace::name_of.
std::vector<NamedEvent> resolve(const TraceSnapshot& snapshot);

/// Keeps only events whose breakpoint name equals `name` (hub events are
/// kept only when `name` is "<hub>").
std::vector<NamedEvent> filter_by_name(std::vector<NamedEvent> events,
                                       const std::string& name);

/// Plain JSON dump:
/// {"trace":"cbp","dropped":N,"events":[{"t_ns":..,"name":"..","tid":..,
///  "kind":"..","rank":..,"detail":..},...]}
void write_json_dump(std::ostream& out, const std::vector<NamedEvent>& events,
                     std::uint64_t dropped);

/// Chrome trace-event JSON object ({"traceEvents":[...]}).  Timestamps
/// are microseconds ("ts"/"dur"), emitted in non-decreasing order.
void write_chrome_trace(std::ostream& out,
                        const std::vector<NamedEvent>& events,
                        std::uint64_t dropped);

/// Parses a dump produced by write_json_dump.  Returns false (and sets
/// `error`) on malformed input.  `dropped` accumulates.
bool read_json_dump(std::istream& in, std::vector<NamedEvent>& events,
                    std::uint64_t& dropped, std::string& error);

}  // namespace cbp::obs
