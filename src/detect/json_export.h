// JSON export for dynamic detector reports — the file format the
// placement layer (src/sa/placement) fuses with static candidates.
//
// The dump is a plain aggregate so callers assemble it from whichever
// detectors they ran; write_json renders it deterministically (input
// order preserved, keys fixed).  Hand-rolled emission keeps cbp_detect
// free of the obs JSON dependency; the escaping matches obs::json so
// the obs parser reads the output back faithfully.
//
// Schema (version pins the contract for the placement parser):
//   { "detector_dump": 1,
//     "races":      [{"file_a", "line_a", "file_b", "line_b",
//                     "second_is_write"}],
//     "contentions":[{"file_a", "line_a", "file_b", "line_b",
//                     "occurrences"}],
//     "deadlocks":  [{"legs": [{"held", "wanted", "file", "line"}]}],
//     "atomicity":  [{"begin_file", "begin_line", "end_file", "end_line",
//                     "interleaver_file", "interleaver_line"}] }
//
// Sites are exported as basename + line (SourceLoc::str() components):
// the placement layer joins them against static candidate sites, which
// also display by basename.  Addresses are run-local and meaningless
// across processes, so they are not exported.
#pragma once

#include <string>
#include <vector>

#include "detect/atomicity.h"
#include "detect/reports.h"

namespace cbp::detect {

/// Reports collected from one instrumented run, ready for export.
struct DetectorDump {
  std::vector<RaceReport> races;
  std::vector<ContentionReport> contentions;
  std::vector<DeadlockReport> deadlocks;
  std::vector<AtomicityReport> atomicity;
};

/// Serializes the dump as JSON (see schema above).
std::string write_json(const DetectorDump& dump);

}  // namespace cbp::detect
