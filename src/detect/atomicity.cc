#include "detect/atomicity.h"

namespace cbp::detect {

void AtomicityCandidateDetector::on_access(const instr::AccessEvent& event) {
  std::scoped_lock lock(mu_);
  VarState& var = vars_[event.addr];

  // Record the site use.
  var.sites[event.loc].insert(event.tid);

  // Two consecutive accesses by the same thread form a block candidate.
  auto it = var.last_site.find(event.tid);
  if (it != var.last_site.end() && it->second != event.loc) {
    var.blocks.insert({it->second, event.loc});
  }
  var.last_site[event.tid] = event.loc;
}

std::vector<AtomicityReport> AtomicityCandidateDetector::candidates() const {
  std::scoped_lock lock(mu_);
  std::vector<AtomicityReport> out;
  for (const auto& [addr, var] : vars_) {
    for (const auto& [begin, end] : var.blocks) {
      // A block owner exists; find interleaver sites used by a thread
      // that is not the only block owner.  Conservatively: any site used
      // by >= 1 thread that also appears with a different thread than
      // some user of the block sites.
      std::set<rt::ThreadId> block_tids;
      auto begin_it = var.sites.find(begin);
      auto end_it = var.sites.find(end);
      if (begin_it != var.sites.end()) {
        block_tids.insert(begin_it->second.begin(), begin_it->second.end());
      }
      if (end_it != var.sites.end()) {
        block_tids.insert(end_it->second.begin(), end_it->second.end());
      }
      for (const auto& [site, tids] : var.sites) {
        if (site == begin || site == end) continue;
        bool cross = false;
        for (rt::ThreadId t : tids) {
          for (rt::ThreadId owner : block_tids) {
            if (t != owner) {
              cross = true;
              break;
            }
          }
          if (cross) break;
        }
        if (!cross) continue;
        AtomicityReport report;
        report.block_begin = begin;
        report.block_end = end;
        report.interleaver = site;
        report.addr = addr;
        out.push_back(report);
      }
    }
  }
  return out;
}

void AtomicityCandidateDetector::reset() {
  std::scoped_lock lock(mu_);
  vars_.clear();
}

}  // namespace cbp::detect
