// Sparse vector clock over dense thread ids (for the FastTrack-style
// happens-before race detector).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "runtime/thread_registry.h"

namespace cbp::detect {

/// An epoch is one component of a vector clock: (thread, clock value).
struct Epoch {
  rt::ThreadId tid = 0;
  std::uint64_t clock = 0;

  friend bool operator==(const Epoch& a, const Epoch& b) {
    return a.tid == b.tid && a.clock == b.clock;
  }
};

class VectorClock {
 public:
  /// Component for thread `tid` (0 if absent).
  [[nodiscard]] std::uint64_t get(rt::ThreadId tid) const {
    return tid < clocks_.size() ? clocks_[tid] : 0;
  }

  void set(rt::ThreadId tid, std::uint64_t value) {
    if (tid >= clocks_.size()) clocks_.resize(tid + 1, 0);
    clocks_[tid] = value;
  }

  void tick(rt::ThreadId tid) { set(tid, get(tid) + 1); }

  /// Pointwise maximum: *this = *this ⊔ other.
  void join(const VectorClock& other) {
    if (other.clocks_.size() > clocks_.size()) {
      clocks_.resize(other.clocks_.size(), 0);
    }
    for (std::size_t i = 0; i < other.clocks_.size(); ++i) {
      clocks_[i] = std::max(clocks_[i], other.clocks_[i]);
    }
  }

  /// True iff *this ⊑ other (pointwise ≤): everything this clock has
  /// seen, `other` has seen too.
  [[nodiscard]] bool leq(const VectorClock& other) const {
    for (std::size_t i = 0; i < clocks_.size(); ++i) {
      if (clocks_[i] > other.get(static_cast<rt::ThreadId>(i))) return false;
    }
    return true;
  }

  /// True iff the single epoch `e` happens-before this clock.
  [[nodiscard]] bool covers(const Epoch& e) const {
    return e.clock <= get(e.tid);
  }

  void clear() { clocks_.clear(); }

  [[nodiscard]] std::size_t size() const { return clocks_.size(); }

 private:
  std::vector<std::uint64_t> clocks_;
};

}  // namespace cbp::detect
