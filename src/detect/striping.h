// Shared striping policy for the passive detectors: per-address state is
// split across kDetectorShards independently locked maps so accesses to
// disjoint addresses from different threads never serialize on a
// detector-global mutex.  Shard structs (eraser.h, fasttrack.h) are
// alignas(64): each shard's lock lives on its own cacheline, so bumping
// the shard count never introduces false sharing between neighbours.
//
// The shard count is a compile-time knob: configure with
// -DCBP_DETECTOR_SHARDS=<n> (cmake option of the same name; power of
// two, up to 64).  The default of 16 matches the historical layout.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>

namespace cbp::detect {

#ifndef CBP_DETECTOR_SHARDS
#define CBP_DETECTOR_SHARDS 16
#endif

constexpr std::size_t kDetectorShards = CBP_DETECTOR_SHARDS;
static_assert(kDetectorShards >= 1 && kDetectorShards <= 64 &&
                  std::has_single_bit(kDetectorShards),
              "CBP_DETECTOR_SHARDS must be a power of two in [1, 64]");

/// Shard index under an arbitrary power-of-two shard count.  The
/// multiplicative hash concentrates its mixing in the HIGH bits, so the
/// index is taken as the top log2(count) bits of the product.  (The old
/// form `(v >> 60) & (count - 1)` hard-coded a 4-bit extraction: for
/// any count > 16 the mask reached into bits the shift had already
/// discarded, so shards 16+ could never be selected and stayed
/// permanently empty.)
constexpr std::size_t detector_shard_index(std::uintptr_t addr,
                                           std::size_t count) {
  if (count <= 1) return 0;
  const std::uintptr_t v =
      (addr >> 4) * 0x9E3779B97F4A7C15ull;  // 16-byte granule, then mix
  const int bits = std::bit_width(count) - 1;  // log2 of the power of two
  return static_cast<std::size_t>(v >> (64 - bits));
}

/// Shard index for an address under the configured shard count.
inline std::size_t detector_shard(const void* addr) {
  return detector_shard_index(reinterpret_cast<std::uintptr_t>(addr),
                              kDetectorShards);
}

}  // namespace cbp::detect
