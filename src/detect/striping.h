// Shared striping policy for the passive detectors: per-address state is
// split across kDetectorShards independently locked maps so accesses to
// disjoint addresses from different threads never serialize on a
// detector-global mutex.
#pragma once

#include <cstddef>
#include <cstdint>

namespace cbp::detect {

constexpr std::size_t kDetectorShards = 16;  // power of two

/// Shard index for an address: multiplicative hash over the 16-byte
/// granule so neighbouring variables spread across shards.
inline std::size_t detector_shard(const void* addr) {
  auto v = reinterpret_cast<std::uintptr_t>(addr) >> 4;
  v *= 0x9E3779B97F4A7C15ull;
  return (v >> 60) & (kDetectorShards - 1);
}

}  // namespace cbp::detect
