#include "detect/contention.h"

namespace cbp::detect {

void ContentionDetector::on_sync(const instr::SyncEvent& event) {
  using Kind = instr::SyncEvent::Kind;
  const bool lock_site = event.kind == Kind::kLockRequest;
  const bool sync_site =
      event.kind == Kind::kWaitEnter || event.kind == Kind::kNotify;
  if (!lock_site && !sync_site) return;
  std::scoped_lock lock(mu_);
  ObjectState& state = objects_[event.obj];
  state.is_sync_object |= sync_site;
  SiteUse& use = state.sites[event.loc];
  use.tids.insert(event.tid);
  use.count += 1;
}

std::vector<ContentionReport> ContentionDetector::collect(
    bool sync_objects_only) const {
  std::scoped_lock lock(mu_);
  std::vector<ContentionReport> out;
  for (const auto& [object, state] : objects_) {
    if (sync_objects_only && !state.is_sync_object) continue;
    const auto& sites = state.sites;
    for (auto a = sites.begin(); a != sites.end(); ++a) {
      for (auto b = a; b != sites.end(); ++b) {
        bool cross_thread;
        if (a == b) {
          cross_thread = a->second.tids.size() >= 2;
        } else {
          // Distinct sites contend if some thread uses one and a
          // different thread uses the other.
          cross_thread = false;
          for (rt::ThreadId t1 : a->second.tids) {
            for (rt::ThreadId t2 : b->second.tids) {
              if (t1 != t2) {
                cross_thread = true;
                break;
              }
            }
            if (cross_thread) break;
          }
        }
        if (!cross_thread) continue;
        ContentionReport report;
        report.lock = object;
        report.site_a = a->first;
        report.site_b = b->first;
        report.occurrences = a->second.count + (a == b ? 0 : b->second.count);
        out.push_back(report);
      }
    }
  }
  return out;
}

std::vector<ContentionReport> ContentionDetector::contentions() const {
  return collect(/*sync_objects_only=*/false);
}

std::vector<ContentionReport> ContentionDetector::sync_object_contentions()
    const {
  return collect(/*sync_objects_only=*/true);
}

void ContentionDetector::reset() {
  std::scoped_lock lock(mu_);
  objects_.clear();
}

}  // namespace cbp::detect
