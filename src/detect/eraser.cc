#include "detect/eraser.h"

#include <algorithm>

#include "runtime/lock_tracker.h"

namespace cbp::detect {
namespace {

std::set<const void*> current_lockset() {
  std::set<const void*> out;
  for (const rt::HeldLock& held : rt::held_locks()) out.insert(held.lock);
  return out;
}

}  // namespace

void EraserDetector::on_access(const instr::AccessEvent& event) {
  const std::set<const void*> held = current_lockset();

  Shard& shard = shards_[detector_shard(event.addr)];
  bool report_race = false;
  RaceReport report;
  {
    std::scoped_lock lock(shard.mu);
    VarState& var = shard.vars[event.addr];

    switch (var.state) {
      case State::kVirgin:
        var.state = State::kExclusive;
        var.owner = event.tid;
        break;
      case State::kExclusive:
        if (event.tid != var.owner) {
          var.state = event.is_write ? State::kSharedModified : State::kShared;
          var.candidate_locks = held;
        }
        break;
      case State::kShared:
        // Intersect candidate set with currently held locks.
        for (auto it = var.candidate_locks.begin();
             it != var.candidate_locks.end();) {
          it = held.count(*it) ? std::next(it) : var.candidate_locks.erase(it);
        }
        if (event.is_write) var.state = State::kSharedModified;
        break;
      case State::kSharedModified:
        for (auto it = var.candidate_locks.begin();
             it != var.candidate_locks.end();) {
          it = held.count(*it) ? std::next(it) : var.candidate_locks.erase(it);
        }
        break;
    }

    if (var.state == State::kSharedModified && var.candidate_locks.empty() &&
        !var.reported) {
      var.reported = true;
      report.addr = event.addr;
      report.first = var.last_loc;
      report.first_tid = var.last_tid;
      report.second = event.loc;
      report.second_tid = event.tid;
      report.second_is_write = event.is_write;
      report_race = true;
    }

    var.last_loc = event.loc;
    var.last_tid = event.tid;
  }

  if (report_race) {
    std::scoped_lock lock(races_mu_);
    races_.push_back(report);
  }
}

std::vector<RaceReport> EraserDetector::races() const {
  std::scoped_lock lock(races_mu_);
  return races_;
}

std::size_t EraserDetector::tracked_addresses() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    std::scoped_lock lock(shard.mu);
    total += shard.vars.size();
  }
  return total;
}

void EraserDetector::reset() {
  for (Shard& shard : shards_) {
    std::scoped_lock lock(shard.mu);
    shard.vars.clear();
  }
  std::scoped_lock lock(races_mu_);
  races_.clear();
}

}  // namespace cbp::detect
