// FastTrack-style happens-before race detector (Flanagan & Freund),
// the precise complement to the Eraser lockset heuristic.
//
// Per-thread vector clocks synchronize through lock release/acquire and
// condvar notify/wait-exit edges; each shared address keeps its last
// write epoch and a read clock.  A read not ordered after the last write,
// or a write not ordered after all previous accesses, is a race.
#pragma once

#include <mutex>
#include <unordered_map>
#include <vector>

#include "detect/reports.h"
#include "detect/vector_clock.h"
#include "instrument/hub.h"

namespace cbp::detect {

class FastTrackDetector : public instr::Listener {
 public:
  void on_access(const instr::AccessEvent& event) override;
  void on_sync(const instr::SyncEvent& event) override;

  [[nodiscard]] std::vector<RaceReport> races() const;

  void reset();

 private:
  struct VarState {
    Epoch write;                      // last write epoch (clock 0 = none)
    VectorClock reads;                // read clock
    instr::SourceLoc write_loc;
    instr::SourceLoc last_read_loc;
    rt::ThreadId last_read_tid = 0;
    bool reported = false;
  };

  /// Thread clock, creating the initial self-component lazily.
  VectorClock& thread_clock(rt::ThreadId tid);

  void report(const void* addr, VarState& var, instr::SourceLoc prior_loc,
              rt::ThreadId prior_tid, const instr::AccessEvent& event);

  mutable std::mutex mu_;
  std::unordered_map<rt::ThreadId, VectorClock> threads_;  // guarded by mu_
  std::unordered_map<const void*, VectorClock> locks_;     // guarded by mu_
  std::unordered_map<const void*, VarState> vars_;         // guarded by mu_
  std::vector<RaceReport> races_;                          // guarded by mu_
};

}  // namespace cbp::detect
