// FastTrack-style happens-before race detector (Flanagan & Freund),
// the precise complement to the Eraser lockset heuristic.
//
// Per-thread vector clocks synchronize through lock release/acquire and
// condvar notify/wait-exit edges; each shared address keeps its last
// write epoch and a read clock.  A read not ordered after the last write,
// or a write not ordered after all previous accesses, is a race.
//
// Concurrency: the detector state is striped.  A thread's own vector
// clock is touched only by events of that thread (events dispatch
// synchronously in the acting thread), so thread clocks live in a
// lock-free chunked array and need no mutex at all.  Per-address and
// per-sync-object state is sharded kDetectorShards ways with per-shard
// locks, so accesses to disjoint addresses never serialize globally.
#pragma once

#include <array>
#include <atomic>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "detect/reports.h"
#include "detect/striping.h"
#include "detect/vector_clock.h"
#include "instrument/hub.h"

namespace cbp::detect {

class FastTrackDetector : public instr::Listener {
 public:
  FastTrackDetector() = default;
  ~FastTrackDetector() override;

  void on_access(const instr::AccessEvent& event) override;
  void on_sync(const instr::SyncEvent& event) override;

  [[nodiscard]] std::vector<RaceReport> races() const;

  void reset();

 private:
  struct VarState {
    Epoch write;                      // last write epoch (clock 0 = none)
    VectorClock reads;                // read clock
    instr::SourceLoc write_loc;
    instr::SourceLoc last_read_loc;
    rt::ThreadId last_read_tid = 0;
    bool reported = false;
  };

  // ---- per-thread clocks (no lock: owner-thread access only) ---------
  // Chunked so publication is a single atomic pointer store and lookups
  // are two dependent loads; padding avoids false sharing between the
  // clocks of adjacent thread ids.
  static constexpr std::size_t kClockChunk = 64;    // clocks per chunk
  static constexpr std::size_t kMaxChunks = 1024;   // 65536 thread ids

  struct alignas(64) PaddedClock {
    VectorClock clock;
  };
  struct ClockChunk {
    std::array<PaddedClock, kClockChunk> clocks;
  };

  /// Thread clock, creating the initial self-component lazily.  Must be
  /// called only from the thread that owns `tid` (the dispatch thread).
  VectorClock& thread_clock(rt::ThreadId tid);

  // ---- sharded per-address / per-sync-object state -------------------
  struct alignas(64) VarShard {
    mutable std::mutex mu;
    std::unordered_map<const void*, VarState> vars;  // guarded by mu
  };
  struct alignas(64) SyncShard {
    mutable std::mutex mu;
    std::unordered_map<const void*, VectorClock> clocks;  // guarded by mu
  };

  static void report(const void* addr, VarState& var,
                     instr::SourceLoc prior_loc, rt::ThreadId prior_tid,
                     const instr::AccessEvent& event, RaceReport& out,
                     bool& fire);

  std::array<std::atomic<ClockChunk*>, kMaxChunks> chunks_{};
  std::mutex chunks_mu_;  // chunk allocation only

  mutable std::array<VarShard, kDetectorShards> var_shards_;
  mutable std::array<SyncShard, kDetectorShards> sync_shards_;

  // Never held together with a shard mutex.
  mutable std::mutex races_mu_;
  std::vector<RaceReport> races_;  // guarded by races_mu_
};

}  // namespace cbp::detect
