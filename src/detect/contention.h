// Lock- and synchronization-object-contention detector.
//
// The paper's Methodology II starts from "all potential conflicting
// states, i.e. data races as well as lock contentions and contentions
// over synchronization objects" (§5).  This detector records every site
// that requests each lock — and, for condition variables, every
// wait-entry and notify site — and reports, per object, every pair of
// sites exercised by at least two distinct threads: the exact shape of
// the §5 log4j report (pairs of AsyncAppender line numbers, which mix
// lock acquisitions with wait/notify sites).
#pragma once

#include <map>
#include <mutex>
#include <set>
#include <unordered_map>
#include <vector>

#include "detect/reports.h"
#include "instrument/hub.h"

namespace cbp::detect {

class ContentionDetector : public instr::Listener {
 public:
  void on_sync(const instr::SyncEvent& event) override;

  /// All contention pairs: for each object, each unordered pair of
  /// contending sites {a, b} exercised by different threads (a == b
  /// counts when two threads used the same site).
  [[nodiscard]] std::vector<ContentionReport> contentions() const;

  /// Only pairs involving condvar wait/notify sites (the missed-notify
  /// candidates of Methodology II).
  [[nodiscard]] std::vector<ContentionReport> sync_object_contentions()
      const;

  void reset();

 private:
  struct SiteUse {
    std::set<rt::ThreadId> tids;
    std::uint64_t count = 0;
  };
  struct ObjectState {
    std::map<instr::SourceLoc, SiteUse> sites;
    bool is_sync_object = false;  ///< condvar (wait/notify) vs plain lock
  };

  std::vector<ContentionReport> collect(bool sync_objects_only) const;

  mutable std::mutex mu_;
  std::unordered_map<const void*, ObjectState> objects_;  // guarded by mu_
};

}  // namespace cbp::detect
