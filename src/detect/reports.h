// Detector report types, rendered in the same shape as the paper's §5
// sample reports — the contract between Methodology I/II tooling and the
// human (or harness) inserting breakpoints.
#pragma once

#include <string>
#include <vector>

#include "instrument/source_loc.h"
#include "runtime/thread_registry.h"

namespace cbp::detect {

/// A (potential or confirmed) data race between two access sites.
struct RaceReport {
  const void* addr = nullptr;
  instr::SourceLoc first;       ///< earlier access site
  instr::SourceLoc second;      ///< later access site
  bool second_is_write = false;
  rt::ThreadId first_tid = 0;
  rt::ThreadId second_tid = 0;

  /// Paper §5: "Data race detected between access of x.f at ..., and
  /// access of y.f at ...".
  [[nodiscard]] std::string str() const {
    return "Data race detected between\n  access at " + first.str() +
           ", and\n  access at " + second.str() + ".";
  }
};

/// Two sites contending for the same lock from different threads.
struct ContentionReport {
  const void* lock = nullptr;
  instr::SourceLoc site_a;
  instr::SourceLoc site_b;
  std::uint64_t occurrences = 0;

  /// Paper §5: "Lock contention: <site>, <site>".
  [[nodiscard]] std::string str() const {
    return "Lock contention:\n  " + site_a.str() + ",\n  " + site_b.str();
  }
};

/// A potential deadlock: two threads acquiring two locks in opposite
/// orders (a 2-cycle in the lock-order graph), generalizable to k-cycles.
struct DeadlockReport {
  struct Leg {
    rt::ThreadId tid = 0;
    const void* held = nullptr;
    std::string held_tag;
    const void* wanted = nullptr;
    std::string wanted_tag;
    instr::SourceLoc site;  ///< where `wanted` is acquired while holding `held`
  };
  std::vector<Leg> legs;

  /// Paper §5: "Deadlock found: Thread10 trying to acquire lock this
  /// while holding lock csList at ...".
  [[nodiscard]] std::string str() const {
    std::string out = "Deadlock found:";
    for (const Leg& leg : legs) {
      out += "\n  Thread" + std::to_string(leg.tid) +
             " trying to acquire lock " + leg.wanted_tag +
             " while holding lock " + leg.held_tag + " at " + leg.site.str();
    }
    return out;
  }
};

}  // namespace cbp::detect
