// Detector report types, rendered in the same shape as the paper's §5
// sample reports — the contract between Methodology I/II tooling and the
// human (or harness) inserting breakpoints.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "instrument/source_loc.h"
#include "runtime/thread_registry.h"

namespace cbp::detect {

/// A (potential or confirmed) data race between two access sites.
struct RaceReport {
  const void* addr = nullptr;
  instr::SourceLoc first;       ///< earlier access site
  instr::SourceLoc second;      ///< later access site
  bool second_is_write = false;
  rt::ThreadId first_tid = 0;
  rt::ThreadId second_tid = 0;

  /// Paper §5: "Data race detected between access of x.f at ..., and
  /// access of y.f at ...".
  [[nodiscard]] std::string str() const {
    return "Data race detected between\n  access at " + first.str() +
           ", and\n  access at " + second.str() + ".";
  }
};

/// Two sites contending for the same lock from different threads.
struct ContentionReport {
  const void* lock = nullptr;
  instr::SourceLoc site_a;
  instr::SourceLoc site_b;
  std::uint64_t occurrences = 0;

  /// Paper §5: "Lock contention: <site>, <site>".
  [[nodiscard]] std::string str() const {
    return "Lock contention:\n  " + site_a.str() + ",\n  " + site_b.str();
  }
};

/// A potential deadlock: two threads acquiring two locks in opposite
/// orders (a 2-cycle in the lock-order graph), generalizable to k-cycles.
struct DeadlockReport {
  struct Leg {
    rt::ThreadId tid = 0;
    const void* held = nullptr;
    std::string held_tag;
    const void* wanted = nullptr;
    std::string wanted_tag;
    instr::SourceLoc site;  ///< where `wanted` is acquired while holding `held`
  };
  std::vector<Leg> legs;

  /// Paper §5: "Deadlock found: Thread10 trying to acquire lock this
  /// while holding lock csList at ...".
  [[nodiscard]] std::string str() const {
    std::string out = "Deadlock found:";
    for (const Leg& leg : legs) {
      out += "\n  Thread" + std::to_string(leg.tid) +
             " trying to acquire lock " + leg.wanted_tag +
             " while holding lock " + leg.held_tag + " at " + leg.site.str();
    }
    return out;
  }
};

/// A breakpoint candidate mined *statically* by cbp-sa (src/sa): the
/// same (l1, l2) shape as the dynamic reports above, but obtained from
/// source text alone — no execution required.  Owns its strings so
/// reports outlive the analysis that produced them.
struct CandidateReport {
  enum class Kind : std::uint8_t { kConflict, kContention, kDeadlock,
                                   kAtomicity };

  Kind kind = Kind::kConflict;
  std::string breakpoint;  ///< generated spec name (`sa-...`)
  std::string subject;     ///< shared variable, lock tag, or lock pair
  std::string file_a;
  std::uint32_t line_a = 0;
  bool a_is_write = false;  ///< conflicts only
  std::string file_b;
  std::uint32_t line_b = 0;
  bool b_is_write = false;  ///< conflicts only
  int score = 0;
  std::string existing;  ///< nearby already-inserted breakpoint, if any

  [[nodiscard]] instr::SourceLoc first() const { return {file_a, line_a}; }
  [[nodiscard]] instr::SourceLoc second() const { return {file_b, line_b}; }

  /// Rendered in the paper's §5 report register, flagged as static.
  [[nodiscard]] std::string str() const {
    std::string out;
    switch (kind) {
      case Kind::kConflict:
        out = "Data race candidate (static) on '" + subject + "' between\n  " +
              std::string(a_is_write ? "write" : "read") + " at " +
              first().str() + ", and\n  " +
              std::string(b_is_write ? "write" : "read") + " at " +
              second().str() + ".";
        break;
      case Kind::kContention:
        out = "Lock contention candidate (static) on '" + subject +
              "':\n  " + first().str() + ",\n  " + second().str();
        break;
      case Kind::kDeadlock:
        out = "Deadlock candidate (static): crossed lock order on " +
              subject + " at\n  " + first().str() + ", and\n  " +
              second().str() + ".";
        break;
      case Kind::kAtomicity:
        out = "Atomicity-violation candidate (static) on '" + subject +
              "': lock released between\n  read at " + first().str() +
              ", and\n  write at " + second().str() + ".";
        break;
    }
    if (!existing.empty()) {
      out += "\n  (near existing breakpoint '" + existing + "')";
    }
    return out;
  }
};

}  // namespace cbp::detect
