// Lock-order-graph deadlock predictor (Goodlock-style).
//
// Builds a directed graph with an edge held -> wanted each time a thread
// acquires `wanted` while holding `held`.  A cycle exercised by distinct
// threads is a potential deadlock; 2-cycles are rendered in the paper's
// §5 "Deadlock found:" report format and map one-to-one onto
// DeadlockTrigger insertions (Methodology I).
#pragma once

#include <map>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "detect/reports.h"
#include "instrument/hub.h"

namespace cbp::detect {

class LockOrderDetector : public instr::Listener {
 public:
  void on_sync(const instr::SyncEvent& event) override;

  /// Potential deadlocks from 2-cycles exercised by >= 2 distinct threads.
  [[nodiscard]] std::vector<DeadlockReport> deadlocks() const;

  /// True if the lock-order graph has any directed cycle (any length).
  [[nodiscard]] bool has_cycle() const;

  /// Number of distinct held->wanted edges observed.
  [[nodiscard]] std::size_t edge_count() const;

  /// Optional: attach a human-readable tag to a lock for reports.
  void tag_lock(const void* lock, std::string tag);

  void reset();

 private:
  struct EdgeKey {
    const void* held;
    const void* wanted;
    friend bool operator<(const EdgeKey& a, const EdgeKey& b) {
      if (a.held != b.held) return a.held < b.held;
      return a.wanted < b.wanted;
    }
  };
  struct EdgeInfo {
    std::set<rt::ThreadId> tids;
    instr::SourceLoc site;       ///< where `wanted` was acquired
    rt::ThreadId sample_tid = 0;
  };

  [[nodiscard]] std::string tag_of(const void* lock) const;  // requires mu_

  mutable std::mutex mu_;
  // Per-thread stack of currently held locks (built from events so the
  // detector is self-contained).  Guarded by mu_.
  std::unordered_map<rt::ThreadId, std::vector<const void*>> held_;
  std::map<EdgeKey, EdgeInfo> edges_;               // guarded by mu_
  std::unordered_map<const void*, std::string> tags_;  // guarded by mu_
};

}  // namespace cbp::detect
