#include "detect/json_export.h"

#include <cstdio>
#include <sstream>

namespace cbp::detect {
namespace {

std::string_view basename_of(std::string_view file) {
  const auto slash = file.rfind('/');
  return slash == std::string_view::npos ? file : file.substr(slash + 1);
}

/// JSON string escaping, matching obs::json::escape so the obs parser
/// round-trips the output.
void append_escaped(std::string_view text, std::ostringstream& out) {
  out << '"';
  for (const char c : text) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

void append_site(const char* key_prefix, const instr::SourceLoc& loc,
                 std::ostringstream& out) {
  out << '"' << key_prefix << "file\":";
  append_escaped(basename_of(loc.file), out);
  out << ",\"" << key_prefix << "line\":" << loc.line;
}

void append_pair(const instr::SourceLoc& a, const instr::SourceLoc& b,
                 std::ostringstream& out) {
  out << "\"file_a\":";
  append_escaped(basename_of(a.file), out);
  out << ",\"line_a\":" << a.line << ",\"file_b\":";
  append_escaped(basename_of(b.file), out);
  out << ",\"line_b\":" << b.line;
}

}  // namespace

std::string write_json(const DetectorDump& dump) {
  std::ostringstream out;
  out << "{\"detector_dump\":1,\"races\":[";
  for (std::size_t i = 0; i < dump.races.size(); ++i) {
    const RaceReport& r = dump.races[i];
    if (i != 0) out << ',';
    out << '{';
    append_pair(r.first, r.second, out);
    out << ",\"second_is_write\":" << (r.second_is_write ? "true" : "false")
        << '}';
  }
  out << "],\"contentions\":[";
  for (std::size_t i = 0; i < dump.contentions.size(); ++i) {
    const ContentionReport& c = dump.contentions[i];
    if (i != 0) out << ',';
    out << '{';
    append_pair(c.site_a, c.site_b, out);
    out << ",\"occurrences\":" << c.occurrences << '}';
  }
  out << "],\"deadlocks\":[";
  for (std::size_t i = 0; i < dump.deadlocks.size(); ++i) {
    if (i != 0) out << ',';
    out << "{\"legs\":[";
    const DeadlockReport& d = dump.deadlocks[i];
    for (std::size_t j = 0; j < d.legs.size(); ++j) {
      const DeadlockReport::Leg& leg = d.legs[j];
      if (j != 0) out << ',';
      out << "{\"held\":";
      append_escaped(leg.held_tag, out);
      out << ",\"wanted\":";
      append_escaped(leg.wanted_tag, out);
      out << ',';
      append_site("", leg.site, out);
      out << '}';
    }
    out << "]}";
  }
  out << "],\"atomicity\":[";
  for (std::size_t i = 0; i < dump.atomicity.size(); ++i) {
    const AtomicityReport& a = dump.atomicity[i];
    if (i != 0) out << ',';
    out << '{';
    append_site("begin_", a.block_begin, out);
    out << ',';
    append_site("end_", a.block_end, out);
    out << ',';
    append_site("interleaver_", a.interleaver, out);
    out << '}';
  }
  out << "]}";
  return out.str();
}

}  // namespace cbp::detect
