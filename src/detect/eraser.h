// Eraser-style lockset race detector (Savage et al., the off-the-shelf
// detector the paper's Methodology II starts from).
//
// Classic state machine per shared address:
//   Virgin -> Exclusive(t) -> Shared / SharedModified
// with a candidate lockset that is intersected with the thread's held
// locks on every access once the address is shared; an empty candidate
// set in the SharedModified state is reported as a potential race.
//
// Per-address state is striped across kShardCount independently locked
// maps (hashed by address), so accesses to disjoint addresses from
// different threads never serialize on a detector-global mutex.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <set>
#include <unordered_map>
#include <vector>

#include "detect/reports.h"
#include "detect/striping.h"
#include "instrument/hub.h"

namespace cbp::detect {

class EraserDetector : public instr::Listener {
 public:
  void on_access(const instr::AccessEvent& event) override;

  /// Potential races found so far (one per address, first time only).
  [[nodiscard]] std::vector<RaceReport> races() const;

  [[nodiscard]] std::size_t tracked_addresses() const;

  void reset();

 private:
  enum class State { kVirgin, kExclusive, kShared, kSharedModified };

  struct VarState {
    State state = State::kVirgin;
    rt::ThreadId owner = 0;
    std::set<const void*> candidate_locks;
    instr::SourceLoc last_loc;
    rt::ThreadId last_tid = 0;
    bool reported = false;
  };

  struct alignas(64) Shard {
    mutable std::mutex mu;
    std::unordered_map<const void*, VarState> vars;  // guarded by mu
  };

  mutable std::array<Shard, kDetectorShards> shards_;

  // Reports are rare; a dedicated mutex keeps them off the access path
  // (never held together with a shard mutex).
  mutable std::mutex races_mu_;
  std::vector<RaceReport> races_;  // guarded by races_mu_
};

}  // namespace cbp::detect
