#include "detect/lock_order.h"

#include <algorithm>
#include <sstream>

namespace cbp::detect {

void LockOrderDetector::on_sync(const instr::SyncEvent& event) {
  using Kind = instr::SyncEvent::Kind;
  if (event.kind != Kind::kLockAcquired && event.kind != Kind::kLockReleased) {
    return;
  }
  std::scoped_lock lock(mu_);
  auto& stack = held_[event.tid];
  if (event.kind == Kind::kLockAcquired) {
    for (const void* held_lock : stack) {
      EdgeInfo& edge = edges_[EdgeKey{held_lock, event.obj}];
      edge.tids.insert(event.tid);
      edge.site = event.loc;
      edge.sample_tid = event.tid;
    }
    stack.push_back(event.obj);
  } else {
    auto it = std::find(stack.rbegin(), stack.rend(), event.obj);
    if (it != stack.rend()) stack.erase(std::next(it).base());
  }
}

std::string LockOrderDetector::tag_of(const void* lock) const {
  auto it = tags_.find(lock);
  if (it != tags_.end()) return it->second;
  std::ostringstream os;
  os << lock;
  return os.str();
}

std::vector<DeadlockReport> LockOrderDetector::deadlocks() const {
  std::scoped_lock lock(mu_);
  std::vector<DeadlockReport> out;
  for (const auto& [key, info] : edges_) {
    if (key.held >= key.wanted) continue;  // visit each unordered pair once
    const auto reverse = edges_.find(EdgeKey{key.wanted, key.held});
    if (reverse == edges_.end()) continue;
    // The cycle must be realizable by two distinct threads.
    bool distinct = false;
    for (rt::ThreadId t1 : info.tids) {
      for (rt::ThreadId t2 : reverse->second.tids) {
        if (t1 != t2) {
          distinct = true;
          break;
        }
      }
      if (distinct) break;
    }
    if (!distinct) continue;
    DeadlockReport report;
    DeadlockReport::Leg forward_leg;
    forward_leg.tid = info.sample_tid;
    forward_leg.held = key.held;
    forward_leg.held_tag = tag_of(key.held);
    forward_leg.wanted = key.wanted;
    forward_leg.wanted_tag = tag_of(key.wanted);
    forward_leg.site = info.site;
    DeadlockReport::Leg reverse_leg;
    reverse_leg.tid = reverse->second.sample_tid;
    reverse_leg.held = key.wanted;
    reverse_leg.held_tag = tag_of(key.wanted);
    reverse_leg.wanted = key.held;
    reverse_leg.wanted_tag = tag_of(key.held);
    reverse_leg.site = reverse->second.site;
    report.legs = {forward_leg, reverse_leg};
    out.push_back(report);
  }
  return out;
}

bool LockOrderDetector::has_cycle() const {
  std::scoped_lock lock(mu_);
  // Iterative DFS with colors over the edge adjacency.
  std::unordered_map<const void*, std::vector<const void*>> adj;
  for (const auto& [key, info] : edges_) {
    adj[key.held].push_back(key.wanted);
  }
  enum Color { kWhite, kGray, kBlack };
  std::unordered_map<const void*, Color> color;
  for (const auto& [node, _] : adj) color[node] = kWhite;

  for (const auto& [start, _] : adj) {
    if (color[start] != kWhite) continue;
    // Stack of (node, next-child-index).
    std::vector<std::pair<const void*, std::size_t>> stack{{start, 0}};
    color[start] = kGray;
    while (!stack.empty()) {
      auto& [node, next] = stack.back();
      const auto& children = adj[node];
      if (next < children.size()) {
        const void* child = children[next++];
        auto child_color = color.count(child) ? color[child] : kBlack;
        if (child_color == kGray) return true;
        if (child_color == kWhite) {
          color[child] = kGray;
          stack.emplace_back(child, 0);
        }
      } else {
        color[node] = kBlack;
        stack.pop_back();
      }
    }
  }
  return false;
}

std::size_t LockOrderDetector::edge_count() const {
  std::scoped_lock lock(mu_);
  return edges_.size();
}

void LockOrderDetector::tag_lock(const void* lock, std::string tag) {
  std::scoped_lock guard(mu_);
  tags_[lock] = std::move(tag);
}

void LockOrderDetector::reset() {
  std::scoped_lock lock(mu_);
  held_.clear();
  edges_.clear();
  tags_.clear();
}

}  // namespace cbp::detect
