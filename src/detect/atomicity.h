// Atomicity-violation candidate detector (phase 1 for the atomicity
// direction of active testing — the randomized atomicity analysis the
// paper builds on).
//
// Heuristic (AVIO/CTrigger-style, simplified): two consecutive accesses
// by the same thread to the same address form an intended-atomic block
// candidate; any access to that address by a different thread is a
// potential interleaver.  Each (block_begin, block_end, interleaver)
// site triple is reported once.
#pragma once

#include <map>
#include <mutex>
#include <set>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "instrument/hub.h"
#include "instrument/source_loc.h"

namespace cbp::detect {

struct AtomicityReport {
  instr::SourceLoc block_begin;
  instr::SourceLoc block_end;
  instr::SourceLoc interleaver;
  const void* addr = nullptr;

  [[nodiscard]] std::string str() const {
    return "Potential atomicity violation:\n  block " + block_begin.str() +
           " .. " + block_end.str() + ",\n  interleaved by " +
           interleaver.str();
  }
};

class AtomicityCandidateDetector : public instr::Listener {
 public:
  void on_access(const instr::AccessEvent& event) override;

  [[nodiscard]] std::vector<AtomicityReport> candidates() const;

  void reset();

 private:
  struct VarState {
    // Last access site per thread (block pattern source).
    std::unordered_map<rt::ThreadId, instr::SourceLoc> last_site;
    // Block pairs seen: (begin, end) per thread-consecutive accesses.
    std::set<std::pair<instr::SourceLoc, instr::SourceLoc>> blocks;
    // All (thread, site) pairs seen, for interleaver discovery.
    std::map<instr::SourceLoc, std::set<rt::ThreadId>> sites;
  };

  mutable std::mutex mu_;
  std::unordered_map<const void*, VarState> vars_;  // guarded by mu_
};

}  // namespace cbp::detect
