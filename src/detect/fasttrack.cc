#include "detect/fasttrack.h"

namespace cbp::detect {

VectorClock& FastTrackDetector::thread_clock(rt::ThreadId tid) {
  VectorClock& clock = threads_[tid];
  if (clock.get(tid) == 0) clock.set(tid, 1);
  return clock;
}

void FastTrackDetector::report(const void* addr, VarState& var,
                               instr::SourceLoc prior_loc,
                               rt::ThreadId prior_tid,
                               const instr::AccessEvent& event) {
  if (var.reported) return;
  var.reported = true;
  RaceReport race;
  race.addr = addr;
  race.first = prior_loc;
  race.first_tid = prior_tid;
  race.second = event.loc;
  race.second_tid = event.tid;
  race.second_is_write = event.is_write;
  races_.push_back(race);
}

void FastTrackDetector::on_access(const instr::AccessEvent& event) {
  std::scoped_lock lock(mu_);
  VectorClock& clock = thread_clock(event.tid);
  VarState& var = vars_[event.addr];

  if (event.is_write) {
    // Write must be ordered after the previous write and all reads.
    if (var.write.clock != 0 && !clock.covers(var.write)) {
      report(event.addr, var, var.write_loc, var.write.tid, event);
    } else if (!var.reads.leq(clock)) {
      report(event.addr, var, var.last_read_loc, var.last_read_tid, event);
    }
    var.write = Epoch{event.tid, clock.get(event.tid)};
    var.write_loc = event.loc;
  } else {
    // Read must be ordered after the previous write.
    if (var.write.clock != 0 && !clock.covers(var.write)) {
      report(event.addr, var, var.write_loc, var.write.tid, event);
    }
    var.reads.set(event.tid, clock.get(event.tid));
    var.last_read_loc = event.loc;
    var.last_read_tid = event.tid;
  }
}

void FastTrackDetector::on_sync(const instr::SyncEvent& event) {
  using Kind = instr::SyncEvent::Kind;
  std::scoped_lock lock(mu_);
  VectorClock& clock = thread_clock(event.tid);
  switch (event.kind) {
    case Kind::kLockAcquired:
    case Kind::kWaitExit:
      // Acquire edge: pull in everything the sync object has seen.
      clock.join(locks_[event.obj]);
      break;
    case Kind::kLockReleased:
    case Kind::kNotify: {
      // Release edge: publish this thread's knowledge, then advance.
      VectorClock& obj_clock = locks_[event.obj];
      obj_clock.join(clock);
      clock.tick(event.tid);
      break;
    }
    case Kind::kLockRequest:
    case Kind::kWaitEnter:
    case Kind::kThreadStart:
    case Kind::kThreadEnd:
      break;
  }
}

std::vector<RaceReport> FastTrackDetector::races() const {
  std::scoped_lock lock(mu_);
  return races_;
}

void FastTrackDetector::reset() {
  std::scoped_lock lock(mu_);
  threads_.clear();
  locks_.clear();
  vars_.clear();
  races_.clear();
}

}  // namespace cbp::detect
