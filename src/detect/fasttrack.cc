#include "detect/fasttrack.h"

namespace cbp::detect {

FastTrackDetector::~FastTrackDetector() {
  for (std::size_t i = 0; i < kMaxChunks; ++i) {
    delete chunks_[i].load(std::memory_order_acquire);
  }
}

VectorClock& FastTrackDetector::thread_clock(rt::ThreadId tid) {
  const std::size_t chunk_index = tid / kClockChunk;
  // Ids beyond the (very generous) table fold back into it; the only
  // cost is imprecision for such outlier threads, never a crash.
  const std::size_t folded = chunk_index % kMaxChunks;
  ClockChunk* chunk = chunks_[folded].load(std::memory_order_acquire);
  if (chunk == nullptr) {
    std::scoped_lock lock(chunks_mu_);
    chunk = chunks_[folded].load(std::memory_order_relaxed);
    if (chunk == nullptr) {
      chunk = new ClockChunk();
      chunks_[folded].store(chunk, std::memory_order_release);
    }
  }
  VectorClock& clock = chunk->clocks[tid % kClockChunk].clock;
  if (clock.get(tid) == 0) clock.set(tid, 1);
  return clock;
}

void FastTrackDetector::report(const void* addr, VarState& var,
                               instr::SourceLoc prior_loc,
                               rt::ThreadId prior_tid,
                               const instr::AccessEvent& event,
                               RaceReport& out, bool& fire) {
  if (var.reported) return;
  var.reported = true;
  out.addr = addr;
  out.first = prior_loc;
  out.first_tid = prior_tid;
  out.second = event.loc;
  out.second_tid = event.tid;
  out.second_is_write = event.is_write;
  fire = true;
}

void FastTrackDetector::on_access(const instr::AccessEvent& event) {
  VectorClock& clock = thread_clock(event.tid);

  VarShard& shard = var_shards_[detector_shard(event.addr)];
  RaceReport race;
  bool fire = false;
  {
    std::scoped_lock lock(shard.mu);
    VarState& var = shard.vars[event.addr];

    if (event.is_write) {
      // Write must be ordered after the previous write and all reads.
      if (var.write.clock != 0 && !clock.covers(var.write)) {
        report(event.addr, var, var.write_loc, var.write.tid, event, race,
               fire);
      } else if (!var.reads.leq(clock)) {
        report(event.addr, var, var.last_read_loc, var.last_read_tid, event,
               race, fire);
      }
      var.write = Epoch{event.tid, clock.get(event.tid)};
      var.write_loc = event.loc;
    } else {
      // Read must be ordered after the previous write.
      if (var.write.clock != 0 && !clock.covers(var.write)) {
        report(event.addr, var, var.write_loc, var.write.tid, event, race,
               fire);
      }
      var.reads.set(event.tid, clock.get(event.tid));
      var.last_read_loc = event.loc;
      var.last_read_tid = event.tid;
    }
  }

  if (fire) {
    std::scoped_lock lock(races_mu_);
    races_.push_back(race);
  }
}

void FastTrackDetector::on_sync(const instr::SyncEvent& event) {
  using Kind = instr::SyncEvent::Kind;
  VectorClock& clock = thread_clock(event.tid);
  SyncShard& shard = sync_shards_[detector_shard(event.obj)];
  std::scoped_lock lock(shard.mu);
  switch (event.kind) {
    case Kind::kLockAcquired:
    case Kind::kWaitExit:
      // Acquire edge: pull in everything the sync object has seen.
      clock.join(shard.clocks[event.obj]);
      break;
    case Kind::kLockReleased:
    case Kind::kNotify: {
      // Release edge: publish this thread's knowledge, then advance.
      VectorClock& obj_clock = shard.clocks[event.obj];
      obj_clock.join(clock);
      clock.tick(event.tid);
      break;
    }
    case Kind::kLockRequest:
    case Kind::kWaitEnter:
    case Kind::kThreadStart:
    case Kind::kThreadEnd:
      break;
  }
}

std::vector<RaceReport> FastTrackDetector::races() const {
  std::scoped_lock lock(races_mu_);
  return races_;
}

void FastTrackDetector::reset() {
  // Safe only while no instrumented workload is running (the documented
  // contract for all detector resets).
  for (std::size_t i = 0; i < kMaxChunks; ++i) {
    ClockChunk* chunk = chunks_[i].load(std::memory_order_acquire);
    if (chunk != nullptr) {
      for (PaddedClock& padded : chunk->clocks) padded.clock.clear();
    }
  }
  for (VarShard& shard : var_shards_) {
    std::scoped_lock lock(shard.mu);
    shard.vars.clear();
  }
  for (SyncShard& shard : sync_shards_) {
    std::scoped_lock lock(shard.mu);
    shard.clocks.clear();
  }
  std::scoped_lock lock(races_mu_);
  races_.clear();
}

}  // namespace cbp::detect
