// Trace replayer: a Hub listener that re-imposes a recorded run's
// global order of shared accesses and lock acquisitions.  Each thread is
// held at its instrumentation points until its operation is at the front
// of the trace — full-schedule enforcement, the cost profile the paper's
// breakpoints avoid.
//
// Divergence (the next arriving ops never match the trace head within
// `divergence_timeout`) switches the replayer to fail-open: enforcement
// stops, the run continues natively, and `diverged()` reports it.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <unordered_map>

#include "instrument/hub.h"
#include "replay/trace.h"
#include "runtime/thread_registry.h"

namespace cbp::replay {

class Replayer : public instr::Listener {
 public:
  explicit Replayer(Trace trace,
                    std::chrono::milliseconds divergence_timeout =
                        std::chrono::milliseconds(500));

  /// Binds the calling thread to the logical role it had when recorded.
  void bind_this_thread(int role);

  /// Minimum spacing between consecutive gate passages.  The gate fires
  /// *before* each access executes; with zero spacing, access k can race
  /// past access k+1's gate.  A small step delay (hundreds of µs) makes
  /// the enforced gate order the actual execution order.
  void set_step_delay(std::chrono::microseconds delay);

  void on_access(const instr::AccessEvent& event) override;
  void on_sync(const instr::SyncEvent& event) override;

  /// True once enforcement was abandoned due to divergence.
  [[nodiscard]] bool diverged() const;

  /// Number of trace operations successfully enforced.
  [[nodiscard]] std::size_t enforced() const;

 private:
  void gate(const TraceOp& op);
  int role_of(rt::ThreadId tid);   // requires mu_
  int object_of(const void* obj);  // requires mu_

  Trace trace_;
  std::chrono::milliseconds divergence_timeout_;
  std::chrono::microseconds step_delay_{0};

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::size_t cursor_ = 0;   // guarded by mu_
  std::chrono::steady_clock::time_point last_advance_{};  // guarded by mu_
  bool failed_open_ = false; // guarded by mu_
  std::unordered_map<rt::ThreadId, int> roles_;   // guarded by mu_
  std::unordered_map<const void*, int> objects_;  // guarded by mu_
  int next_role_ = 0;                             // guarded by mu_
  int next_object_ = 0;                           // guarded by mu_
};

}  // namespace cbp::replay
