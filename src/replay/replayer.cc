#include "replay/replayer.h"

#include <thread>

#include "runtime/vclock.h"

namespace cbp::replay {

Replayer::Replayer(Trace trace, std::chrono::milliseconds divergence_timeout)
    : trace_(std::move(trace)), divergence_timeout_(divergence_timeout) {}

void Replayer::bind_this_thread(int role) {
  std::scoped_lock lock(mu_);
  roles_[rt::this_thread_id()] = role;
  next_role_ = std::max(next_role_, role + 1);
}

void Replayer::set_step_delay(std::chrono::microseconds delay) {
  std::scoped_lock lock(mu_);
  step_delay_ = delay;
}

int Replayer::role_of(rt::ThreadId tid) {
  auto [it, inserted] = roles_.try_emplace(tid, next_role_);
  if (inserted) ++next_role_;
  return it->second;
}

int Replayer::object_of(const void* obj) {
  auto [it, inserted] = objects_.try_emplace(obj, next_object_);
  if (inserted) ++next_object_;
  return it->second;
}

void Replayer::gate(const TraceOp& op) {
  std::unique_lock lock(mu_);
  if (failed_open_) return;
  const bool my_turn = rt::clock_wait_for(cv_, lock, divergence_timeout_, [&] {
    if (failed_open_) return true;
    if (cursor_ >= trace_.ops.size()) return true;  // trace exhausted
    return trace_.ops[cursor_] == op;
  });
  if (failed_open_) return;
  if (!my_turn) {
    // Divergence: the run no longer matches the recording.  Fail open so
    // the program can finish; report via diverged().
    failed_open_ = true;
    rt::clock_notify_all(cv_);
    return;
  }
  if (cursor_ < trace_.ops.size() && trace_.ops[cursor_] == op) {
    if (step_delay_.count() > 0 && rt::bound_virtual_clock() == nullptr) {
      // Space consecutive gate passages so the previous thread's access
      // has executed before this one's gate returns.  Sleeping under mu_
      // is intentional: it serializes gate passages, which is the point.
      // Under a virtual clock the trial is already serialized, so the
      // pacing sleep is unnecessary (and sleeping while holding mu_
      // would stall peers blocked on the native mutex).
      const auto earliest = last_advance_ + step_delay_;
      const auto now = std::chrono::steady_clock::now();
      if (now < earliest) std::this_thread::sleep_for(earliest - now);
    }
    ++cursor_;
    last_advance_ = std::chrono::steady_clock::now();
    rt::clock_notify_all(cv_);
  }
}

void Replayer::on_access(const instr::AccessEvent& event) {
  TraceOp op;
  {
    std::scoped_lock lock(mu_);
    op.role = role_of(event.tid);
    op.object = object_of(event.addr);
  }
  op.kind = event.is_write ? TraceOp::Kind::kWrite : TraceOp::Kind::kRead;
  gate(op);
}

void Replayer::on_sync(const instr::SyncEvent& event) {
  // Gate at the REQUEST so the acquisition order is what gets enforced;
  // the recorded op carries the acquire kind.
  if (event.kind != instr::SyncEvent::Kind::kLockRequest) return;
  TraceOp op;
  {
    std::scoped_lock lock(mu_);
    op.role = role_of(event.tid);
    op.object = object_of(event.obj);
  }
  op.kind = TraceOp::Kind::kLockAcquire;
  gate(op);
}

bool Replayer::diverged() const {
  std::scoped_lock lock(mu_);
  return failed_open_;
}

std::size_t Replayer::enforced() const {
  std::scoped_lock lock(mu_);
  return cursor_;
}

}  // namespace cbp::replay
