// Execution traces for record/replay (the paper's §7 counterpoint).
//
// A trace is the sequence of scheduler-visible nondeterministic choices
// of one run: shared-memory accesses and lock acquisitions, in global
// order, with thread and object identities normalized to small logical
// ids so a trace is portable across runs (and serializable).
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

namespace cbp::replay {

struct TraceOp {
  enum class Kind : std::uint8_t {
    kRead,         ///< shared-memory read
    kWrite,        ///< shared-memory write
    kLockAcquire,  ///< lock acquisition (gated at the request)
  };
  int role = 0;    ///< logical thread id (caller-bound or first-seen order)
  Kind kind = Kind::kRead;
  int object = 0;  ///< logical object id (first-seen order)

  friend bool operator==(const TraceOp& a, const TraceOp& b) {
    return a.role == b.role && a.kind == b.kind && a.object == b.object;
  }
};

struct Trace {
  std::vector<TraceOp> ops;

  [[nodiscard]] bool empty() const { return ops.empty(); }
  [[nodiscard]] std::size_t size() const { return ops.size(); }

  /// One line per op: "<role> <R|W|L> <object>".
  [[nodiscard]] std::string serialize() const {
    std::ostringstream os;
    for (const TraceOp& op : ops) {
      const char kind = op.kind == TraceOp::Kind::kRead    ? 'R'
                        : op.kind == TraceOp::Kind::kWrite ? 'W'
                                                           : 'L';
      os << op.role << ' ' << kind << ' ' << op.object << '\n';
    }
    return os.str();
  }

  static Trace deserialize(const std::string& text) {
    Trace trace;
    std::istringstream is(text);
    int role = 0;
    char kind = 0;
    int object = 0;
    while (is >> role >> kind >> object) {
      TraceOp op;
      op.role = role;
      op.kind = kind == 'R'   ? TraceOp::Kind::kRead
                : kind == 'W' ? TraceOp::Kind::kWrite
                              : TraceOp::Kind::kLockAcquire;
      op.object = object;
      trace.ops.push_back(op);
    }
    return trace;
  }
};

}  // namespace cbp::replay
