#include "replay/recorder.h"

namespace cbp::replay {

void Recorder::bind_this_thread(int role) {
  std::scoped_lock lock(mu_);
  roles_[rt::this_thread_id()] = role;
  next_role_ = std::max(next_role_, role + 1);
}

int Recorder::role_of(rt::ThreadId tid) {
  auto [it, inserted] = roles_.try_emplace(tid, next_role_);
  if (inserted) ++next_role_;
  return it->second;
}

int Recorder::object_of(const void* obj) {
  auto [it, inserted] = objects_.try_emplace(obj, next_object_);
  if (inserted) ++next_object_;
  return it->second;
}

void Recorder::on_access(const instr::AccessEvent& event) {
  std::scoped_lock lock(mu_);
  TraceOp op;
  op.role = role_of(event.tid);
  op.kind = event.is_write ? TraceOp::Kind::kWrite : TraceOp::Kind::kRead;
  op.object = object_of(event.addr);
  trace_.ops.push_back(op);
}

void Recorder::on_sync(const instr::SyncEvent& event) {
  if (event.kind != instr::SyncEvent::Kind::kLockAcquired) return;
  std::scoped_lock lock(mu_);
  TraceOp op;
  op.role = role_of(event.tid);
  op.kind = TraceOp::Kind::kLockAcquire;
  op.object = object_of(event.obj);
  trace_.ops.push_back(op);
}

Trace Recorder::trace() const {
  std::scoped_lock lock(mu_);
  return trace_;
}

}  // namespace cbp::replay
