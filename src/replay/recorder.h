// Trace recorder: a Hub listener that captures the global order of
// shared accesses and lock acquisitions (the RecPlay/InstantReplay
// family of §7, in miniature).  Together with Replayer it is the
// heavy-weight alternative the paper contrasts breakpoints against —
// built here so the comparison can be measured (bench_replay).
//
// Thread identity: call bind_this_thread(role) from each participating
// thread before its first recorded event; unbound threads get roles in
// first-appearance order (which must then match between record and
// replay runs).
#pragma once

#include <mutex>
#include <unordered_map>

#include "instrument/hub.h"
#include "replay/trace.h"
#include "runtime/thread_registry.h"

namespace cbp::replay {

class Recorder : public instr::Listener {
 public:
  /// Binds the calling thread to a stable logical role id.
  void bind_this_thread(int role);

  void on_access(const instr::AccessEvent& event) override;
  void on_sync(const instr::SyncEvent& event) override;

  /// Snapshot of everything recorded so far.
  [[nodiscard]] Trace trace() const;

 private:
  int role_of(rt::ThreadId tid);   // requires mu_
  int object_of(const void* obj);  // requires mu_

  mutable std::mutex mu_;
  Trace trace_;                                        // guarded by mu_
  std::unordered_map<rt::ThreadId, int> roles_;        // guarded by mu_
  std::unordered_map<const void*, int> objects_;       // guarded by mu_
  int next_role_ = 0;                                  // guarded by mu_
  int next_object_ = 0;                                // guarded by mu_
};

}  // namespace cbp::replay
