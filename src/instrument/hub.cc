#include "instrument/hub.h"

#include <algorithm>
#include <mutex>

namespace cbp::instr {

Hub& Hub::instance() {
  static Hub hub;
  return hub;
}

void Hub::add_listener(Listener* listener) {
  std::unique_lock lock(mu_);
  listeners_.push_back(listener);
  active_.store(true, std::memory_order_release);
}

void Hub::remove_listener(Listener* listener) {
  std::unique_lock lock(mu_);
  listeners_.erase(std::remove(listeners_.begin(), listeners_.end(), listener),
                   listeners_.end());
  active_.store(!listeners_.empty(), std::memory_order_release);
}

void Hub::access(const void* addr, bool is_write, SourceLoc loc) {
  if (!has_listeners()) return;
  AccessEvent event;
  event.addr = addr;
  event.is_write = is_write;
  event.loc = loc;
  event.tid = rt::this_thread_id();
  std::shared_lock lock(mu_);
  for (Listener* listener : listeners_) listener->on_access(event);
}

void Hub::sync(SyncEvent::Kind kind, const void* obj, SourceLoc loc) {
  if (!has_listeners()) return;
  SyncEvent event;
  event.kind = kind;
  event.obj = obj;
  event.loc = loc;
  event.tid = rt::this_thread_id();
  std::shared_lock lock(mu_);
  for (Listener* listener : listeners_) listener->on_sync(event);
}

}  // namespace cbp::instr
