#include "instrument/hub.h"

#include <thread>
#include <utility>

#include "obs/trace.h"

namespace cbp::instr {

Hub& Hub::instance() {
  static Hub hub;
  return hub;
}

Hub::Hub() : current_(std::make_shared<const Snapshot>()) {
  snapshot_.store(current_.get());
}

void Hub::publish(std::shared_ptr<const Snapshot> next, bool drain) {
  retired_.push_back(std::move(current_));
  current_ = std::move(next);
  // seq_cst store: orders against the readers' seq_cst pin (see
  // dispatch()) so the grace wait below cannot miss a reader that
  // went on to load a retired snapshot.
  snapshot_.store(current_.get(), std::memory_order_seq_cst);
  if (!drain) return;
  // Grace period: flip the reader parity and wait for the old slot to
  // drain (see the scheme note on pins_ in hub.h).  When the old
  // slot reaches zero, every reader that could have loaded a retired
  // snapshot has unpinned — the acquire load synchronizes with their
  // release decrements — so the retired snapshots can be freed and the
  // caller may destroy a removed listener.  Readers arriving after the
  // flip pin the other slot, so this wait strictly drains and cannot
  // be starved by a saturated dispatch load.
  const unsigned old_parity = parity_.load(std::memory_order_relaxed);
  parity_.store(1 - old_parity, std::memory_order_seq_cst);
  while (pins_[old_parity].value.load(std::memory_order_acquire) != 0) {
    std::this_thread::yield();
  }
  retired_.clear();
}

void Hub::add_listener(Listener* listener) {
  std::scoped_lock lock(reg_mu_);
  auto next = std::make_shared<Snapshot>(*current_);
  next->push_back(listener);
  // No drain: the old snapshot is a subset of the new one, so readers
  // still on it see only registered listeners; waiting here could stall
  // registration behind a listener that blocks inside its callback
  // (fuzz confirmers hold threads at instrumentation points for
  // seconds at a time).
  publish(std::move(next), /*drain=*/false);
  // Publish the snapshot before flipping the fast-path flag: a dispatch
  // that sees active_ == true must find the listener in the snapshot.
  active_.store(true, std::memory_order_release);
}

void Hub::remove_listener(Listener* listener) {
  std::scoped_lock lock(reg_mu_);
  auto next = std::make_shared<Snapshot>();
  next->reserve(current_->size());
  for (Listener* l : *current_) {
    if (l != listener) next->push_back(l);
  }
  active_.store(!next->empty(), std::memory_order_release);
  // Draining publish: returns only after every dispatch that could
  // still observe `listener` — through any retired snapshot — has
  // exited, so the caller may destroy the listener immediately after
  // we return.
  publish(std::move(next), /*drain=*/true);
}

namespace {

// Listener callbacks may throw (confirmers escape a reproduced deadlock
// by throwing through the dispatch), so the unpin must fire on unwind
// too or the grace-period accounting leaks a pin forever.
class ScopedUnpin {
 public:
  explicit ScopedUnpin(std::atomic<std::uint64_t>& count) : count_(count) {}
  ~ScopedUnpin() { count_.fetch_sub(1, std::memory_order_release); }
  ScopedUnpin(const ScopedUnpin&) = delete;
  ScopedUnpin& operator=(const ScopedUnpin&) = delete;

 private:
  std::atomic<std::uint64_t>& count_;
};

}  // namespace

template <class Event, void (Listener::*Fn)(const Event&)>
void Hub::dispatch(const Event& event) {
  // Pin the parity slot, then RE-VALIDATE the parity before touching
  // the snapshot.  The re-check closes the stale-pin hole: a thread
  // preempted between reading parity_ and pinning could otherwise pin
  // the inactive slot (after an intervening flip), which the next
  // grace period does not wait on — it would then free the snapshot
  // this thread is about to dispatch over.  A validated pin is always
  // on the slot the next flip retires, so the publisher counts us; a
  // failed validation unpins and retries before any snapshot access.
  // Retries require a concurrent remove_listener (rare) to have
  // flipped in the window, so the loop terminates in practice
  // immediately.
  unsigned parity;
  for (;;) {
    parity = parity_.load(std::memory_order_seq_cst);
    pins_[parity].value.fetch_add(1, std::memory_order_seq_cst);
    if (parity_.load(std::memory_order_seq_cst) == parity) break;
    pins_[parity].value.fetch_sub(1, std::memory_order_release);
  }
  // Release unpin (on return OR unwind): the publisher's load of the
  // drained slot sees all our snapshot uses before freeing it.
  ScopedUnpin unpin(pins_[parity].value);
  // The validation read synchronizes with the publisher's parity flip,
  // which is ordered after its snapshot swap — so this load can never
  // observe a pointer the in-progress grace period is about to free.
  const Snapshot* snap = snapshot_.load(std::memory_order_seq_cst);
  for (Listener* listener : *snap) (listener->*Fn)(event);
}

void Hub::access(const void* addr, bool is_write, SourceLoc loc) {
  if (!has_listeners()) return;
  // Trace checks sit behind the no-listener early return on purpose:
  // kHubAccess/kHubSync record *dispatches*, and the idle fast path
  // stays a single acquire load (bench_micro_overhead budgets it).
#ifndef CBP_DISABLE_OBS
  if (obs::Trace::hub_events()) {
    obs::Trace::record(obs::EventKind::kHubAccess, obs::kNoName, -1,
                       is_write ? 1 : 0);
  }
#endif
  AccessEvent event;
  event.addr = addr;
  event.is_write = is_write;
  event.loc = loc;
  event.tid = rt::this_thread_id();
  dispatch<AccessEvent, &Listener::on_access>(event);
}

void Hub::sync(SyncEvent::Kind kind, const void* obj, SourceLoc loc) {
  if (!has_listeners()) return;
#ifndef CBP_DISABLE_OBS
  if (obs::Trace::hub_events()) {
    obs::Trace::record(obs::EventKind::kHubSync, obs::kNoName, -1,
                       static_cast<std::uint16_t>(kind));
  }
#endif
  SyncEvent event;
  event.kind = kind;
  event.obj = obj;
  event.loc = loc;
  event.tid = rt::this_thread_id();
  dispatch<SyncEvent, &Listener::on_sync>(event);
}

}  // namespace cbp::instr
