// Instrumentation hub: the event bus between instrumented code
// (SharedVar, TrackedMutex, TrackedCondVar) and analysis listeners
// (detectors in src/detect, schedule fuzzers in src/fuzz).
//
// Listener callbacks run synchronously in the acting thread *at the
// instrumentation point*, which is what lets fuzz listeners inject noise
// or pauses there (ConTest/CalFuzzer style) in addition to passive
// detectors recording the event.
#pragma once

#include <atomic>
#include <cstdint>
#include <shared_mutex>
#include <vector>

#include "instrument/source_loc.h"
#include "runtime/thread_registry.h"

namespace cbp::instr {

/// A shared-memory access about to be performed by the calling thread.
struct AccessEvent {
  const void* addr = nullptr;
  bool is_write = false;
  SourceLoc loc;
  rt::ThreadId tid = 0;
};

/// A synchronization operation performed by the calling thread.
struct SyncEvent {
  enum class Kind : std::uint8_t {
    kLockRequest,   ///< about to block on a lock (the contention site)
    kLockAcquired,  ///< lock acquired
    kLockReleased,  ///< lock released
    kWaitEnter,     ///< entering cv wait (lock released inside)
    kWaitExit,      ///< returned from cv wait (lock reacquired)
    kNotify,        ///< notify_one/notify_all issued
    kThreadStart,   ///< thread began participating
    kThreadEnd,     ///< thread finished participating
  };
  Kind kind = Kind::kLockRequest;
  const void* obj = nullptr;  ///< the lock / condvar identity
  SourceLoc loc;
  rt::ThreadId tid = 0;
};

/// Analysis callback interface.  on_access fires *before* the access,
/// kLockRequest fires *before* blocking — both may sleep to perturb the
/// schedule; the remaining hooks are post-facto notifications.
class Listener {
 public:
  virtual ~Listener() = default;
  virtual void on_access(const AccessEvent& event) { (void)event; }
  virtual void on_sync(const SyncEvent& event) { (void)event; }
};

/// Process-wide hub.  Registration is rare; dispatch is the hot path and
/// short-circuits when no listener is attached.
///
/// Contract: add/remove listeners at workload boundaries (before workers
/// start or after they quiesce).  Dispatch holds the hub lock shared, so
/// registration under a saturated dispatch load may wait arbitrarily
/// long on reader-preferring rwlock implementations.
class Hub {
 public:
  static Hub& instance();

  void add_listener(Listener* listener);
  void remove_listener(Listener* listener);
  [[nodiscard]] bool has_listeners() const {
    return active_.load(std::memory_order_acquire);
  }

  /// Emits an access event (call just before performing the access).
  void access(const void* addr, bool is_write, SourceLoc loc);

  /// Emits a sync event.
  void sync(SyncEvent::Kind kind, const void* obj, SourceLoc loc);

 private:
  Hub() = default;

  // Dispatch holds mu_ shared (listeners may sleep to inject noise without
  // serializing other threads); add/remove hold it exclusive, so a
  // listener can never dangle while a dispatch is in flight.
  mutable std::shared_mutex mu_;
  std::vector<Listener*> listeners_;  // guarded by mu_
  std::atomic<bool> active_{false};
};

/// RAII listener registration.
class ScopedListener {
 public:
  explicit ScopedListener(Listener& listener) : listener_(&listener) {
    Hub::instance().add_listener(listener_);
  }
  ~ScopedListener() { Hub::instance().remove_listener(listener_); }
  ScopedListener(const ScopedListener&) = delete;
  ScopedListener& operator=(const ScopedListener&) = delete;

 private:
  Listener* listener_;
};

}  // namespace cbp::instr
