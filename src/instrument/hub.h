// Instrumentation hub: the event bus between instrumented code
// (SharedVar, TrackedMutex, TrackedCondVar) and analysis listeners
// (detectors in src/detect, schedule fuzzers in src/fuzz).
//
// Listener callbacks run synchronously in the acting thread *at the
// instrumentation point*, which is what lets fuzz listeners inject noise
// or pauses there (ConTest/CalFuzzer style) in addition to passive
// detectors recording the event.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "instrument/source_loc.h"
#include "runtime/thread_registry.h"

namespace cbp::instr {

/// A shared-memory access about to be performed by the calling thread.
struct AccessEvent {
  const void* addr = nullptr;
  bool is_write = false;
  SourceLoc loc;
  rt::ThreadId tid = 0;
};

/// A synchronization operation performed by the calling thread.
struct SyncEvent {
  enum class Kind : std::uint8_t {
    kLockRequest,   ///< about to block on a lock (the contention site)
    kLockAcquired,  ///< lock acquired
    kLockReleased,  ///< lock released
    kWaitEnter,     ///< entering cv wait (lock released inside)
    kWaitExit,      ///< returned from cv wait (lock reacquired)
    kNotify,        ///< notify_one/notify_all issued
    kThreadStart,   ///< thread began participating
    kThreadEnd,     ///< thread finished participating
  };
  Kind kind = Kind::kLockRequest;
  const void* obj = nullptr;  ///< the lock / condvar identity
  SourceLoc loc;
  rt::ThreadId tid = 0;
};

/// Analysis callback interface.  on_access fires *before* the access,
/// kLockRequest fires *before* blocking — both may sleep to perturb the
/// schedule; the remaining hooks are post-facto notifications.
class Listener {
 public:
  virtual ~Listener() = default;
  virtual void on_access(const AccessEvent& event) { (void)event; }
  virtual void on_sync(const SyncEvent& event) { (void)event; }
};

/// Process-wide hub.  Registration is rare; dispatch is the hot path and
/// short-circuits when no listener is attached.
///
/// Dispatch is RCU-style: the listener list is an immutable snapshot
/// swapped atomically on add/remove.  Readers never take a mutex — with
/// no listener attached the cost is one atomic load; with listeners it
/// is a reader pin (one atomic increment), an atomic snapshot-pointer
/// load, and an unpin (all plain atomics, no CAS loop, no lock).
/// Registration copies the list aside and publishes the new snapshot;
/// it can therefore never be starved by a saturated dispatch load (the
/// old reader-preferring rwlock could).
///
/// Contract: remove_listener() is safe while dispatches are in flight —
/// it blocks until every dispatch that could still observe the removed
/// listener has drained (an RCU grace period), so the caller may destroy
/// the listener as soon as remove_listener() returns.  Two exclusions
/// remain: a listener must not remove itself from inside its own
/// callback (the grace period would wait on the running dispatch —
/// self-deadlock), and concurrent add/remove of the *same* listener
/// object is a caller bug.
class Hub {
 public:
  static Hub& instance();

  void add_listener(Listener* listener);

  /// Blocks until no in-flight dispatch can still see `listener`.
  void remove_listener(Listener* listener);

  [[nodiscard]] bool has_listeners() const {
    return active_.load(std::memory_order_acquire);
  }

  /// Emits an access event (call just before performing the access).
  void access(const void* addr, bool is_write, SourceLoc loc);

  /// Emits a sync event.
  void sync(SyncEvent::Kind kind, const void* obj, SourceLoc loc);

 private:
  Hub();

  using Snapshot = std::vector<Listener*>;

  /// Publishes `next` as the current snapshot.  If `drain`, waits out
  /// the grace period and frees every retired snapshot; otherwise the
  /// old snapshot is parked on retired_ (used by add_listener, where
  /// the old list is a subset of the new one and waiting could stall
  /// registration behind a listener that blocks inside its callback).
  /// Caller holds reg_mu_.
  void publish(std::shared_ptr<const Snapshot> next, bool drain);

  template <class Event, void (Listener::*Fn)(const Event&)>
  void dispatch(const Event& event);

  /// Current immutable listener list for dispatch.  The object itself is
  /// kept alive by current_ (below); retired snapshots are freed only
  /// after their grace period, so this raw pointer is always valid to
  /// dereference while the reader holds its pin.
  std::atomic<const Snapshot*> snapshot_;

  /// Two-slot reader pin counts (userspace-RCU style grace periods).
  /// A dispatch reads parity_, increments pins_[parity], RE-READS
  /// parity_ to validate the pin (retrying on mismatch), loads the
  /// snapshot pointer, and decrements the same slot when done — all
  /// seq_cst except the release decrement.  A draining publisher swaps
  /// the snapshot, flips parity_, and waits for the OLD slot to reach
  /// zero.  Soundness: a validated pin's re-read saw the slot still
  /// current, so any later flip retires exactly that slot and the
  /// publisher's wait counts the reader until its decrement; if the
  /// flip instead preceded the validation read, the reader's snapshot
  /// load is ordered after the publisher's swap and sees the new list,
  /// never retired memory.  The validation step is what makes a pin
  /// trustworthy — without it a thread preempted between its parity
  /// read and its increment can pin the slot the next grace period
  /// does not wait on.  Liveness: readers arriving after the flip
  /// either land in the other slot or fail validation and move there,
  /// so the awaited count strictly drains — a saturated dispatch load
  /// cannot starve the writer (the failure mode of a single in-flight
  /// counter).  Padded: the slots are reader-hot.
  struct alignas(64) PinCount {
    std::atomic<std::uint64_t> value{0};
  };
  std::array<PinCount, 2> pins_;
  std::atomic<unsigned> parity_{0};

  /// Owns the published snapshot.  Guarded by reg_mu_; never touched by
  /// dispatch.
  std::shared_ptr<const Snapshot> current_;

  /// Snapshots replaced without a grace wait (by add_listener), kept
  /// alive until the next draining publish proves no reader can still
  /// hold them.  Guarded by reg_mu_.
  std::vector<std::shared_ptr<const Snapshot>> retired_;

  /// Serializes the copy-on-write publishers only; never touched by
  /// dispatch.
  std::mutex reg_mu_;

  std::atomic<bool> active_{false};
};

/// RAII listener registration.
class ScopedListener {
 public:
  explicit ScopedListener(Listener& listener) : listener_(&listener) {
    Hub::instance().add_listener(listener_);
  }
  ~ScopedListener() { Hub::instance().remove_listener(listener_); }
  ScopedListener(const ScopedListener&) = delete;
  ScopedListener& operator=(const ScopedListener&) = delete;

 private:
  Listener* listener_;
};

}  // namespace cbp::instr
