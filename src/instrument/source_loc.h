// Lightweight source location value type.
//
// Detector reports are keyed by program locations (the paper's l1/l2);
// std::source_location::current() captures them at instrumentation sites
// with zero annotation burden.
#pragma once

#include <cstdint>
#include <functional>
#include <source_location>
#include <string>
#include <string_view>

namespace cbp::instr {

struct SourceLoc {
  std::string_view file;
  std::uint32_t line = 0;

  SourceLoc() = default;
  constexpr SourceLoc(std::string_view file_in, std::uint32_t line_in)
      : file(file_in), line(line_in) {}

  static SourceLoc current(
      std::source_location loc = std::source_location::current()) {
    return SourceLoc{loc.file_name(), loc.line()};
  }

  [[nodiscard]] bool valid() const { return line != 0; }

  /// Short form: basename:line (matches the paper's report style).
  [[nodiscard]] std::string str() const {
    const auto slash = file.rfind('/');
    const std::string_view base =
        slash == std::string_view::npos ? file : file.substr(slash + 1);
    return std::string(base) + ":line " + std::to_string(line);
  }

  friend bool operator==(const SourceLoc& a, const SourceLoc& b) {
    return a.line == b.line && a.file == b.file;
  }
  friend bool operator!=(const SourceLoc& a, const SourceLoc& b) {
    return !(a == b);
  }
  friend bool operator<(const SourceLoc& a, const SourceLoc& b) {
    if (a.file != b.file) return a.file < b.file;
    return a.line < b.line;
  }
};

struct SourceLocHash {
  std::size_t operator()(const SourceLoc& loc) const {
    return std::hash<std::string_view>{}(loc.file) * 1000003u ^ loc.line;
  }
};

}  // namespace cbp::instr
