// Instrumented shared variable.
//
// SharedVar<T> reports every read/write to the Hub with its source
// location — the raw material for the Eraser/FastTrack detectors and for
// the CalFuzzer-style active tester.  Storage is a relaxed std::atomic so
// a "data race" in a replica is real at the logical level (stale reads,
// lost updates are observable) without being C++ undefined behaviour.
#pragma once

#include <atomic>

#include "instrument/hub.h"
#include "instrument/source_loc.h"

namespace cbp::instr {

template <class T>
class SharedVar {
  static_assert(std::is_trivially_copyable_v<T>,
                "SharedVar requires a trivially copyable type");

 public:
  SharedVar() : value_{} {}
  explicit SharedVar(T initial) : value_(initial) {}

  SharedVar(const SharedVar&) = delete;
  SharedVar& operator=(const SharedVar&) = delete;

  /// Instrumented read (reports before accessing).
  T read(SourceLoc loc = SourceLoc::current()) const {
    Hub::instance().access(&value_, /*is_write=*/false, loc);
    return value_.load(std::memory_order_relaxed);
  }

  /// Instrumented write (reports before accessing).
  void write(T value, SourceLoc loc = SourceLoc::current()) {
    Hub::instance().access(&value_, /*is_write=*/true, loc);
    value_.store(value, std::memory_order_relaxed);
  }

  /// Instrumented read-modify-write expressed as two racy halves: the
  /// load and the store are separate accesses, so an interleaved peer
  /// update is lost — exactly the bug shape of the JGF kernels.
  template <class Fn>
  T racy_update(Fn&& fn, SourceLoc loc = SourceLoc::current()) {
    Hub::instance().access(&value_, /*is_write=*/false, loc);
    T old = value_.load(std::memory_order_relaxed);
    T updated = fn(old);
    Hub::instance().access(&value_, /*is_write=*/true, loc);
    value_.store(updated, std::memory_order_relaxed);
    return updated;
  }

  /// Uninstrumented peek for assertions in tests/harnesses.
  T peek() const { return value_.load(std::memory_order_relaxed); }

  /// Uninstrumented write for initialization in tests/harnesses.
  void poke(T value) { value_.store(value, std::memory_order_relaxed); }

  /// Identity used in detector reports.
  const void* address() const { return &value_; }

 private:
  mutable std::atomic<T> value_;
};

}  // namespace cbp::instr
