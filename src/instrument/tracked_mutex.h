// Instrumented synchronization primitives.
//
// TrackedMutex behaves exactly like std::mutex but (1) reports request /
// acquire / release events to the Hub with the acquisition's source
// location, and (2) maintains the per-thread held-lock stack used by the
// lock-order-graph detector and by the paper's isLockTypeHeld refinement.
// TrackedCondVar does the same for wait/notify, which the lock-contention
// detector and missed-notification analyses consume.
//
// Both are clock-aware (runtime/vclock.h).  Replicas deliberately hold
// tracked mutexes across engine postponements — that is the bug pattern
// under study — so under a virtual clock the *acquisition* itself must
// be schedulable: a blocked locker registers on the mutex's channel and
// yields instead of parking in the kernel, and every unlock (including
// the implicit one inside a condition wait) notifies that channel.
// Stall thresholds become virtual deadlines, which is what turns the
// multi-second deadlock/missed-notify detections of the jigsaw and
// log4j replicas into free fast-forwards.
#pragma once

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <string>
#include <string_view>

#include "instrument/hub.h"
#include "instrument/source_loc.h"
#include "runtime/clock.h"
#include "runtime/lock_tracker.h"
#include "runtime/sim_crash.h"
#include "runtime/vclock.h"

namespace cbp::instr {

class TrackedMutex {
 public:
  explicit TrackedMutex(std::string tag = "mutex") : tag_(std::move(tag)) {}

  TrackedMutex(const TrackedMutex&) = delete;
  TrackedMutex& operator=(const TrackedMutex&) = delete;

  void lock(SourceLoc loc = SourceLoc::current()) {
    Hub::instance().sync(SyncEvent::Kind::kLockRequest, this, loc);
    rt::clock_lock(mu_);
    rt::note_lock_acquired(this, tag_);
    Hub::instance().sync(SyncEvent::Kind::kLockAcquired, this, loc);
  }

  /// Acquires like lock(), but throws rt::StallError once the (nominal,
  /// clock-adjusted) stall threshold elapses — the point at which a
  /// replica declares "deadlock conditions met".
  void lock_or_stall(std::chrono::milliseconds stall_after,
                     SourceLoc loc = SourceLoc::current()) {
    Hub::instance().sync(SyncEvent::Kind::kLockRequest, this, loc);
    if (!rt::clock_lock(mu_, rt::clock_adjust(stall_after))) {
      throw rt::StallError("lock wait exceeded stall threshold at " +
                           loc.str());
    }
    rt::note_lock_acquired(this, tag_);
    Hub::instance().sync(SyncEvent::Kind::kLockAcquired, this, loc);
  }

  bool try_lock(SourceLoc loc = SourceLoc::current()) {
    if (!mu_.try_lock()) return false;
    rt::note_lock_acquired(this, tag_);
    Hub::instance().sync(SyncEvent::Kind::kLockAcquired, this, loc);
    return true;
  }

  void unlock(SourceLoc loc = SourceLoc::current()) {
    Hub::instance().sync(SyncEvent::Kind::kLockReleased, this, loc);
    rt::note_lock_released(this);
    mu_.unlock();
    rt::clock_notify_unlock(mu_);
  }

  [[nodiscard]] std::string_view tag() const { return tag_; }

 private:
  friend class TrackedCondVar;
  std::timed_mutex mu_;
  std::string tag_;
};

/// RAII lock for TrackedMutex that captures the acquisition site.
/// (std::scoped_lock works too, but loses the caller's source location.)
class TrackedLock {
 public:
  explicit TrackedLock(TrackedMutex& mu, SourceLoc loc = SourceLoc::current())
      : mu_(&mu) {
    mu_->lock(loc);
  }
  ~TrackedLock() {
    if (mu_ != nullptr) mu_->unlock();
  }
  TrackedLock(const TrackedLock&) = delete;
  TrackedLock& operator=(const TrackedLock&) = delete;

  /// Early release (idempotent).
  void unlock() {
    if (mu_ != nullptr) {
      mu_->unlock();
      mu_ = nullptr;
    }
  }

 private:
  TrackedMutex* mu_;
};

/// Condition variable over TrackedMutex that reports wait/notify events.
/// Waits release/reacquire the tracked lock state so the held-lock stack
/// stays correct across the wait.
class TrackedCondVar {
 public:
  TrackedCondVar() = default;
  TrackedCondVar(const TrackedCondVar&) = delete;
  TrackedCondVar& operator=(const TrackedCondVar&) = delete;

  template <class Predicate>
  void wait(TrackedMutex& mu, Predicate pred,
            SourceLoc loc = SourceLoc::current()) {
    Hub::instance().sync(SyncEvent::Kind::kWaitEnter, this, loc);
    // The wait releases and reacquires the mutex; report both so
    // happens-before detectors track the lock correctly across the wait.
    Hub::instance().sync(SyncEvent::Kind::kLockReleased, &mu, loc);
    rt::note_lock_released(&mu);
    {
      std::unique_lock<std::timed_mutex> lock(mu.mu_, std::adopt_lock);
      if (auto* vc = rt::bound_virtual_clock()) {
        wait_virtual(*vc, lock, mu, rt::VirtualClock::kNoDeadline, pred);
      } else {
        cv_.wait(lock, std::move(pred));
      }
      lock.release();  // ownership returns to the TrackedMutex holder
    }
    rt::note_lock_acquired(&mu, mu.tag());
    Hub::instance().sync(SyncEvent::Kind::kLockAcquired, &mu, loc);
    Hub::instance().sync(SyncEvent::Kind::kWaitExit, this, loc);
  }

  /// Timed wait; returns the final predicate value.  `timeout` is in
  /// the active clock's timebase (callers apply rt::clock_adjust to
  /// nominal values, as they used to apply rt::TimeScale::apply).
  template <class Rep, class Period, class Predicate>
  bool wait_for(TrackedMutex& mu, std::chrono::duration<Rep, Period> timeout,
                Predicate pred, SourceLoc loc = SourceLoc::current()) {
    Hub::instance().sync(SyncEvent::Kind::kWaitEnter, this, loc);
    Hub::instance().sync(SyncEvent::Kind::kLockReleased, &mu, loc);
    rt::note_lock_released(&mu);
    bool result;
    {
      std::unique_lock<std::timed_mutex> lock(mu.mu_, std::adopt_lock);
      if (auto* vc = rt::bound_virtual_clock()) {
        const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                            timeout)
                            .count();
        const std::int64_t deadline =
            ns <= 0 ? vc->now_ns() : vc->now_ns() + ns;
        result = wait_virtual(*vc, lock, mu, deadline, pred);
      } else {
        result = cv_.wait_for(lock, timeout, std::move(pred));
      }
      lock.release();
    }
    rt::note_lock_acquired(&mu, mu.tag());
    Hub::instance().sync(SyncEvent::Kind::kLockAcquired, &mu, loc);
    Hub::instance().sync(SyncEvent::Kind::kWaitExit, this, loc);
    return result;
  }

  /// Waits like wait(), but declares a stall ("missed notification
  /// conditions met") by throwing rt::StallError when the (nominal,
  /// clock-adjusted) threshold elapses with the predicate still false.
  /// This is how replicas detect missed-notify bugs the way the paper
  /// does — "stalls due to missed notifications are detected by large
  /// timeouts".
  template <class Predicate>
  void wait_or_stall(TrackedMutex& mu, std::chrono::milliseconds stall_after,
                     Predicate pred, SourceLoc loc = SourceLoc::current()) {
    if (!wait_for(mu, rt::clock_adjust(stall_after), std::move(pred), loc)) {
      throw rt::StallError("condition wait exceeded stall threshold at " +
                           loc.str());
    }
  }

  /// Java-style `wait()`: blocks until a notify_one/notify_all arrives
  /// AFTER entry — no program-state predicate is consulted, so a missed
  /// notification leaves the thread blocked even if the logical
  /// condition has since become true (exactly the bug class of log4j's
  /// AsyncAppender).  Throws rt::StallError after the (nominal,
  /// clock-adjusted) threshold.
  void wait_notified_or_stall(TrackedMutex& mu,
                              std::chrono::milliseconds stall_after,
                              SourceLoc loc = SourceLoc::current()) {
    const std::uint64_t seen = epoch_.load(std::memory_order_acquire);
    const bool notified =
        wait_for(mu, rt::clock_adjust(stall_after),
                 [&] {
                   return epoch_.load(std::memory_order_acquire) != seen;
                 },
                 loc);
    if (!notified) {
      throw rt::StallError("wait() never notified; stall threshold at " +
                           loc.str());
    }
  }

  void notify_one(SourceLoc loc = SourceLoc::current()) {
    Hub::instance().sync(SyncEvent::Kind::kNotify, this, loc);
    epoch_.fetch_add(1, std::memory_order_acq_rel);
    rt::clock_notify_one(cv_);
  }

  void notify_all(SourceLoc loc = SourceLoc::current()) {
    Hub::instance().sync(SyncEvent::Kind::kNotify, this, loc);
    epoch_.fetch_add(1, std::memory_order_acq_rel);
    rt::clock_notify_all(cv_);
  }

 private:
  /// Virtual-mode predicate wait.  Differs from the generic helper in
  /// one load-bearing way: the mutex being released here is a *tracked*
  /// mutex other threads may be virtually blocked on, so the unlock
  /// half must notify the mutex channel and the reacquire half must go
  /// through the schedulable try-lock loop (a suspended thread can hold
  /// the mutex across its own yield).
  template <class Lock, class Predicate>
  bool wait_virtual(rt::VirtualClock& vc, Lock& lock, TrackedMutex& mu,
                    std::int64_t deadline_ns, Predicate& pred) {
    for (;;) {
      if (pred()) return true;
      if (deadline_ns != rt::VirtualClock::kNoDeadline &&
          vc.now_ns() >= deadline_ns) {
        return pred();
      }
      lock.unlock();
      rt::clock_notify_unlock(mu.mu_);
      const bool notified = vc.wait(&cv_, deadline_ns);
      while (!lock.try_lock()) {
        vc.wait(&mu.mu_, rt::VirtualClock::kNoDeadline);
      }
      if (!notified) return pred();
    }
  }

  std::condition_variable_any cv_;
  std::atomic<std::uint64_t> epoch_{0};  ///< notification edge counter
};

}  // namespace cbp::instr
