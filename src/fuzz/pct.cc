#include "fuzz/pct.h"

#include <algorithm>
#include <thread>

#include "runtime/vclock.h"

namespace cbp::fuzz {

PctLiteScheduler::PctLiteScheduler(PctOptions options)
    : options_(options), rng_(options.seed) {
  for (int i = 0; i < options_.depth - 1; ++i) {
    change_points_.push_back(rng_.next_below(
        std::max<std::uint64_t>(1, options_.expected_events)));
  }
  std::sort(change_points_.begin(), change_points_.end());
}

void PctLiteScheduler::perturb(rt::ThreadId tid) {
  const std::uint64_t event_index =
      events_.fetch_add(1, std::memory_order_relaxed);

  int behind = 0;  // how many known threads outrank this one
  {
    std::scoped_lock lock(mu_);
    auto [it, inserted] = priorities_.try_emplace(tid, 0);
    if (inserted) {
      it->second = static_cast<int>(rng_.next_below(1'000'000)) + 1;
    }
    // Priority-change point: demote the acting thread to lowest.
    if (std::binary_search(change_points_.begin(), change_points_.end(),
                           event_index)) {
      it->second = 0;
    }
    const int mine = it->second;
    for (const auto& [other_tid, priority] : priorities_) {
      if (other_tid != tid && priority > mine) ++behind;
    }
  }
  if (behind > 0) {
    rt::clock_sleep_for(options_.delay_unit * behind);
  }
}

void PctLiteScheduler::on_access(const instr::AccessEvent& event) {
  perturb(event.tid);
}

void PctLiteScheduler::on_sync(const instr::SyncEvent& event) {
  if (event.kind == instr::SyncEvent::Kind::kLockRequest) perturb(event.tid);
}

}  // namespace cbp::fuzz
