// ConTest-style noise injection (Nir-Buchbinder et al.; paper §7).
//
// A Hub listener that, with probability p at each instrumented access or
// lock-request, puts the acting thread to sleep for a random duration.
// This is the classic "add random noise to the scheduler" baseline the
// benches compare BTRIGGER against.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>

#include "instrument/hub.h"
#include "runtime/rng.h"

namespace cbp::fuzz {

struct NoiseOptions {
  double probability = 0.1;  ///< chance of injecting noise per event
  std::chrono::microseconds min_sleep{100};
  std::chrono::microseconds max_sleep{2000};
  bool at_accesses = true;    ///< perturb shared-memory accesses
  bool at_lock_requests = true;  ///< perturb lock acquisition sites
  std::uint64_t seed = 12345;
};

class NoiseInjector : public instr::Listener {
 public:
  explicit NoiseInjector(NoiseOptions options = {});

  void on_access(const instr::AccessEvent& event) override;
  void on_sync(const instr::SyncEvent& event) override;

  /// Number of sleeps injected so far.
  [[nodiscard]] std::uint64_t injected() const {
    return injected_.load(std::memory_order_relaxed);
  }

 private:
  void maybe_sleep();

  NoiseOptions options_;
  std::mutex rng_mu_;
  rt::Rng rng_;  // guarded by rng_mu_
  std::atomic<std::uint64_t> injected_{0};
};

}  // namespace cbp::fuzz
