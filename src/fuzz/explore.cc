#include "fuzz/explore.h"

#include <algorithm>
#include <limits>

namespace cbp::fuzz {
namespace {

/// Counts role switches in a 0/1 choice string.
int context_switches(const std::vector<int>& choices) {
  int switches = 0;
  for (std::size_t i = 1; i < choices.size(); ++i) {
    if (choices[i] != choices[i - 1]) ++switches;
  }
  return switches;
}

}  // namespace

std::uint64_t interleaving_count(std::size_t n, std::size_t m) {
  // C(n+m, n) with saturation.
  std::uint64_t result = 1;
  for (std::size_t i = 1; i <= n; ++i) {
    const std::uint64_t numerator = static_cast<std::uint64_t>(m + i);
    if (result > std::numeric_limits<std::uint64_t>::max() / numerator) {
      return std::numeric_limits<std::uint64_t>::max();
    }
    result = result * numerator / static_cast<std::uint64_t>(i);
  }
  return result;
}

std::vector<std::vector<replay::TraceOp>> split_by_role(
    const replay::Trace& trace, int roles) {
  std::vector<std::vector<replay::TraceOp>> out(
      static_cast<std::size_t>(roles));
  for (const replay::TraceOp& op : trace.ops) {
    if (op.role >= 0 && op.role < roles) {
      out[static_cast<std::size_t>(op.role)].push_back(op);
    }
  }
  return out;
}

ExploreResult explore_schedules(
    const std::vector<replay::TraceOp>& role0_ops,
    const std::vector<replay::TraceOp>& role1_ops,
    const std::function<bool(const replay::Trace&)>& run_under_trace,
    ExploreOptions options) {
  ExploreResult result;

  // Enumerate choice strings (which role supplies the next op) in
  // lexicographic order via iterative successor computation.  A choice
  // string is valid when it uses exactly n zeros and m ones.
  const std::size_t n = role0_ops.size();
  const std::size_t m = role1_ops.size();
  std::vector<int> choices;
  choices.insert(choices.end(), n, 0);
  choices.insert(choices.end(), m, 1);  // lexicographically smallest

  auto next_permutation_binary = [&]() -> bool {
    // std::next_permutation over the 0/1 multiset.
    return std::next_permutation(choices.begin(), choices.end());
  };

  bool more = true;
  while (more &&
         result.schedules_run + result.schedules_skipped <
             options.max_schedules) {
    if (options.context_bound >= 0 &&
        context_switches(choices) > options.context_bound) {
      ++result.schedules_skipped;
      more = next_permutation_binary();
      continue;
    }
    // Materialize the trace for this choice string.
    replay::Trace trace;
    std::size_t i0 = 0, i1 = 0;
    for (int choice : choices) {
      trace.ops.push_back(choice == 0 ? role0_ops[i0++] : role1_ops[i1++]);
    }
    ++result.schedules_run;
    if (run_under_trace(trace)) {
      ++result.buggy_schedules;
      if (result.first_buggy_trace.empty()) result.first_buggy_trace = trace;
      if (options.stop_at_first_bug) break;
    }
    more = next_permutation_binary();
  }
  return result;
}

}  // namespace cbp::fuzz
