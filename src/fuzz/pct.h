// PCT-lite: a priority-based schedule perturber inspired by the PCT
// randomized scheduler (Burckhardt et al., ASPLOS'10; paper §7).
//
// True PCT requires full scheduler control; this approximation assigns
// each thread a random priority on first sight and, at every
// instrumentation point, delays the thread proportionally to how many
// known threads outrank it.  `depth - 1` random priority-change points
// (global event indices) demote the acting thread to the lowest
// priority, emulating PCT's d-depth schedule sampling.  Used purely as a
// baseline in the benches.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "instrument/hub.h"
#include "runtime/rng.h"
#include "runtime/thread_registry.h"

namespace cbp::fuzz {

struct PctOptions {
  int depth = 3;                       ///< PCT's d parameter
  std::uint64_t expected_events = 10'000;  ///< PCT's k parameter
  std::chrono::microseconds delay_unit{200};
  std::uint64_t seed = 54321;
};

class PctLiteScheduler : public instr::Listener {
 public:
  explicit PctLiteScheduler(PctOptions options = {});

  void on_access(const instr::AccessEvent& event) override;
  void on_sync(const instr::SyncEvent& event) override;

  [[nodiscard]] std::uint64_t events_seen() const {
    return events_.load(std::memory_order_relaxed);
  }

 private:
  void perturb(rt::ThreadId tid);

  PctOptions options_;
  std::mutex mu_;
  rt::Rng rng_;                                       // guarded by mu_
  std::unordered_map<rt::ThreadId, int> priorities_;  // guarded by mu_
  std::vector<std::uint64_t> change_points_;          // guarded by mu_
  std::atomic<std::uint64_t> events_{0};
};

}  // namespace cbp::fuzz
