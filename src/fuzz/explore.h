// Systematic schedule exploration (CHESS-style, §7 related work),
// built on the replay module: enumerate interleavings of two threads'
// recorded operation sequences and replay each one, checking a bug
// predicate.
//
// The paper positions concurrent breakpoints against exactly this kind
// of machinery: "the goal of this work is not to systematically or
// randomly explore thread schedules ... rather, concurrent breakpoints
// make sure that once a bug is found, the bug can be made reproducible".
// This explorer lets a bench put numbers on that trade-off: a bug at
// depth d costs the explorer a combinatorial number of replays, and the
// breakpoint exactly one.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "replay/trace.h"

namespace cbp::fuzz {

struct ExploreOptions {
  /// Stop after this many schedules (the interleaving count is
  /// C(n+m, n); a cap keeps exploration bounded).
  std::uint64_t max_schedules = 10'000;

  /// CHESS's key insight: bound the number of context switches.  A
  /// schedule with more than `context_bound` switches between the two
  /// roles is skipped.  Negative = unbounded.
  int context_bound = -1;

  /// Stop at the first buggy schedule.
  bool stop_at_first_bug = true;
};

struct ExploreResult {
  std::uint64_t schedules_run = 0;
  std::uint64_t schedules_skipped = 0;  ///< over the context bound
  std::uint64_t buggy_schedules = 0;
  replay::Trace first_buggy_trace;  ///< replayable witness (empty if none)
};

/// Enumerates interleavings of `role0_ops` and `role1_ops` (each the
/// per-role operation sequence of the workload, e.g. split from a
/// serialized recording) in a deterministic order; for each candidate
/// trace, calls `run_under_trace(trace)` which must execute the workload
/// under a replay::Replayer and return true when the bug manifested.
ExploreResult explore_schedules(
    const std::vector<replay::TraceOp>& role0_ops,
    const std::vector<replay::TraceOp>& role1_ops,
    const std::function<bool(const replay::Trace&)>& run_under_trace,
    ExploreOptions options = {});

/// Splits a recorded trace into per-role operation sequences.
std::vector<std::vector<replay::TraceOp>> split_by_role(
    const replay::Trace& trace, int roles);

/// Number of interleavings of two sequences: C(n+m, n), saturating.
std::uint64_t interleaving_count(std::size_t n, std::size_t m);

}  // namespace cbp::fuzz
