#include "fuzz/active.h"

#include <algorithm>
#include <thread>

#include "detect/atomicity.h"
#include "detect/fasttrack.h"
#include "detect/lock_order.h"
#include "runtime/clock.h"
#include "runtime/lock_tracker.h"
#include "runtime/vclock.h"

namespace cbp::fuzz {

// ---------------------------------------------------------------------------
// ConfirmedBug rendering
// ---------------------------------------------------------------------------

std::string ConfirmedBug::report() const {
  switch (kind) {
    case Kind::kRace:
      return "Data race detected between\n  access at " + site_a.str() +
             ", and\n  access at " + site_b.str() + ".";
    case Kind::kDeadlock:
      return "Deadlock found:\n  Thread" + std::to_string(tid_a) +
             " and Thread" + std::to_string(tid_b) +
             " acquire two locks in opposite orders at\n  " + site_a.str() +
             " and " + site_b.str();
    case Kind::kAtomicity:
      return "Atomicity violation detected:\n  block " + site_c.str() +
             " .. " + site_b.str() + " interleaved by\n  access at " +
             site_a.str() + ".";
  }
  return {};
}

std::string ConfirmedBug::breakpoint_suggestion(
    const std::string& breakpoint_name) const {
  switch (kind) {
    case Kind::kRace:
      return "insert at " + site_a.str() + ":\n  cbp::ConflictTrigger(\"" +
             breakpoint_name +
             "\", obj).trigger_here(/*is_first_action=*/true);\n"
             "insert at " +
             site_b.str() + ":\n  cbp::ConflictTrigger(\"" +
             breakpoint_name +
             "\", obj).trigger_here(/*is_first_action=*/false);";
    case Kind::kDeadlock:
      return "insert at " + site_a.str() + ":\n  cbp::DeadlockTrigger(\"" +
             breakpoint_name +
             "\", held, wanted).trigger_here(/*is_first_action=*/true);\n"
             "insert at " +
             site_b.str() + ":\n  cbp::DeadlockTrigger(\"" +
             breakpoint_name +
             "\", held, wanted).trigger_here(/*is_first_action=*/false);";
    case Kind::kAtomicity:
      // As in the paper's StringBuffer example: the interleaver executes
      // first from the conflict state, the block-end access after it.
      return "insert at " + site_a.str() + ":\n  cbp::AtomicityTrigger(\"" +
             breakpoint_name +
             "\", obj).trigger_here(/*is_first_action=*/true);\n"
             "insert at " +
             site_b.str() + ":\n  cbp::AtomicityTrigger(\"" +
             breakpoint_name +
             "\", obj).trigger_here(/*is_first_action=*/false);";
  }
  return {};
}

// ---------------------------------------------------------------------------
// RaceConfirmer
// ---------------------------------------------------------------------------

RaceConfirmer::RaceConfirmer(RaceCandidate candidate,
                             std::chrono::microseconds pause)
    : candidate_(candidate), pause_(pause) {}

bool RaceConfirmer::site_matches(const instr::SourceLoc& loc) const {
  return loc == candidate_.site_a || loc == candidate_.site_b;
}

void RaceConfirmer::on_access(const instr::AccessEvent& event) {
  if (!site_matches(event.loc)) return;

  std::unique_lock lock(mu_);

  // Is a complementary thread already paused at this conflict object?
  for (Pending* peer : pending_) {
    if (peer->matched || peer->tid == event.tid || peer->addr != event.addr) {
      continue;
    }
    peer->matched = true;
    ConfirmedBug bug;
    bug.kind = ConfirmedBug::Kind::kRace;
    bug.site_a = peer->loc;
    bug.site_b = event.loc;
    bug.object = event.addr;
    bug.tid_a = peer->tid;
    bug.tid_b = event.tid;
    confirmed_bugs_.push_back(bug);
    rt::clock_notify_all(cv_);
    return;  // both threads proceed; the racy state is live right now
  }

  // Otherwise pause here to give the peer a chance to arrive.
  Pending self{event.addr, event.tid, event.loc, false};
  pending_.push_back(&self);
  rt::clock_wait_for(cv_, lock, rt::clock_adjust(pause_),
                     [&] { return self.matched; });
  pending_.erase(std::remove(pending_.begin(), pending_.end(), &self),
                 pending_.end());
}

std::vector<ConfirmedBug> RaceConfirmer::confirmed() const {
  std::scoped_lock lock(mu_);
  return confirmed_bugs_;
}

// ---------------------------------------------------------------------------
// DeadlockConfirmer
// ---------------------------------------------------------------------------

DeadlockConfirmer::DeadlockConfirmer(DeadlockCandidate candidate,
                                     std::chrono::microseconds pause)
    : candidate_(candidate), pause_(pause) {}

void DeadlockConfirmer::on_sync(const instr::SyncEvent& event) {
  if (event.kind != instr::SyncEvent::Kind::kLockRequest) return;

  // Which side of the crossing is this thread on?
  const void* wanted = event.obj;
  const void* must_hold = nullptr;
  if (wanted == candidate_.lock_a) {
    must_hold = candidate_.lock_b;
  } else if (wanted == candidate_.lock_b) {
    must_hold = candidate_.lock_a;
  } else {
    return;
  }
  if (!rt::is_lock_held(must_hold)) return;

  std::unique_lock lock(mu_);

  for (Pending* peer : pending_) {
    if (peer->matched || peer->tid == event.tid) continue;
    // The peer is requesting the opposite lock while holding this one.
    if (peer->wanted != must_hold) continue;
    peer->matched = true;
    any_.store(true, std::memory_order_release);
    ConfirmedBug bug;
    bug.kind = ConfirmedBug::Kind::kDeadlock;
    bug.site_a = peer->loc;
    bug.site_b = event.loc;
    bug.object = must_hold;
    bug.object_b = wanted;
    bug.tid_a = peer->tid;
    bug.tid_b = event.tid;
    confirmed_bugs_.push_back(bug);
    rt::clock_notify_all(cv_);
    // Escape before this thread acquires the second lock: the crossing
    // is proven and actually proceeding would deadlock the process.
    throw DeadlockConfirmedError();
  }

  Pending self{wanted, event.tid, event.loc, false};
  pending_.push_back(&self);
  rt::clock_wait_for(cv_, lock, rt::clock_adjust(pause_),
                     [&] { return self.matched; });
  pending_.erase(std::remove(pending_.begin(), pending_.end(), &self),
                 pending_.end());
  if (self.matched) throw DeadlockConfirmedError();
}

std::vector<ConfirmedBug> DeadlockConfirmer::confirmed() const {
  std::scoped_lock lock(mu_);
  return confirmed_bugs_;
}

bool DeadlockConfirmer::any_confirmed() const {
  return any_.load(std::memory_order_acquire);
}

// ---------------------------------------------------------------------------
// AtomicityConfirmer
// ---------------------------------------------------------------------------

AtomicityConfirmer::AtomicityConfirmer(AtomicityCandidate candidate,
                                       std::chrono::microseconds pause)
    : candidate_(candidate), pause_(pause) {}

void AtomicityConfirmer::on_access(const instr::AccessEvent& event) {
  if (event.loc == candidate_.block_begin) {
    // The intended-atomic block opens for this thread.
    std::scoped_lock lock(mu_);
    open_[event.tid] = OpenBlock{event.addr, false};
    rt::clock_notify_all(cv_);  // a waiting interleaver may now match
    return;
  }

  if (event.loc == candidate_.interleaver) {
    std::unique_lock lock(mu_);
    auto other_open = [&]() -> OpenBlock* {
      for (auto& [tid, block] : open_) {
        if (tid != event.tid && block.addr == event.addr && !block.matched) {
          return &block;
        }
      }
      return nullptr;
    };
    OpenBlock* block = other_open();
    if (block == nullptr) {
      // Give a block a chance to open around us.
      rt::clock_wait_for(cv_, lock, rt::clock_adjust(pause_),
                         [&] { return other_open() != nullptr; });
      block = other_open();
    }
    if (block != nullptr) {
      block->matched = true;
      ConfirmedBug bug;
      bug.kind = ConfirmedBug::Kind::kAtomicity;
      bug.site_a = candidate_.interleaver;
      bug.site_b = candidate_.block_end;
      bug.site_c = candidate_.block_begin;
      bug.object = event.addr;
      bug.tid_b = event.tid;
      confirmed_bugs_.push_back(bug);
      rt::clock_notify_all(cv_);
      // Proceed: this access now executes INSIDE the peer's block — the
      // violation is live.
    }
    return;
  }

  if (event.loc == candidate_.block_end) {
    bool matched = false;
    {
      std::unique_lock lock(mu_);
      auto it = open_.find(event.tid);
      if (it == open_.end() || it->second.addr != event.addr) return;
      if (!it->second.matched) {
        // Pause at the block end, inviting the interleaver in.
        rt::clock_wait_for(cv_, lock, rt::clock_adjust(pause_),
                           [&] { return open_[event.tid].matched; });
      }
      matched = it->second.matched;
      open_.erase(it);
    }
    if (matched) {
      // Ordering delay: let the interleaver's access actually execute
      // before the block-end access resumes (cf. the engine's
      // order_delay for the plain trigger API).
      rt::clock_sleep_for(std::chrono::milliseconds(2));
    }
  }
}

std::vector<ConfirmedBug> AtomicityConfirmer::confirmed() const {
  std::scoped_lock lock(mu_);
  return confirmed_bugs_;
}

// ---------------------------------------------------------------------------
// Phase-1 pipelines
// ---------------------------------------------------------------------------

std::vector<RaceCandidate> find_race_candidates(
    const std::function<void()>& workload) {
  detect::FastTrackDetector detector;
  {
    instr::ScopedListener registration(detector);
    workload();
  }
  std::vector<RaceCandidate> out;
  for (const detect::RaceReport& race : detector.races()) {
    out.push_back(RaceCandidate{race.first, race.second});
  }
  return out;
}

std::vector<DeadlockCandidate> find_deadlock_candidates(
    const std::function<void()>& workload) {
  detect::LockOrderDetector detector;
  {
    instr::ScopedListener registration(detector);
    workload();
  }
  std::vector<DeadlockCandidate> out;
  for (const detect::DeadlockReport& report : detector.deadlocks()) {
    if (report.legs.size() == 2) {
      out.push_back(
          DeadlockCandidate{report.legs[0].held, report.legs[0].wanted});
    }
  }
  return out;
}

std::vector<AtomicityCandidate> find_atomicity_candidates(
    const std::function<void()>& workload) {
  detect::AtomicityCandidateDetector detector;
  {
    instr::ScopedListener registration(detector);
    workload();
  }
  std::vector<AtomicityCandidate> out;
  for (const detect::AtomicityReport& report : detector.candidates()) {
    out.push_back(AtomicityCandidate{report.block_begin, report.block_end,
                                     report.interleaver});
  }
  return out;
}

SessionResult run_active_testing(const std::function<void()>& workload,
                                 SessionOptions options) {
  SessionResult result;

  // ---- Phase 1: one instrumented run under all candidate detectors.
  detect::FastTrackDetector race_detector;
  detect::LockOrderDetector lock_detector;
  detect::AtomicityCandidateDetector atomicity_detector;
  {
    instr::ScopedListener r1(race_detector);
    instr::ScopedListener r2(lock_detector);
    instr::ScopedListener r3(atomicity_detector);
    workload();
  }

  // ---- Phase 2: one confirmation run per candidate.
  if (options.races) {
    for (const detect::RaceReport& report : race_detector.races()) {
      RaceConfirmer confirmer(RaceCandidate{report.first, report.second},
                              options.pause);
      instr::ScopedListener registration(confirmer);
      workload();
      ++result.candidates_tried;
      for (const ConfirmedBug& bug : confirmer.confirmed()) {
        result.bugs.push_back(bug);
      }
    }
  }
  if (options.deadlocks) {
    for (const detect::DeadlockReport& report : lock_detector.deadlocks()) {
      if (report.legs.size() != 2) continue;
      DeadlockConfirmer confirmer(
          DeadlockCandidate{report.legs[0].held, report.legs[0].wanted},
          options.pause);
      instr::ScopedListener registration(confirmer);
      workload();
      ++result.candidates_tried;
      for (const ConfirmedBug& bug : confirmer.confirmed()) {
        result.bugs.push_back(bug);
      }
    }
  }
  if (options.atomicity) {
    for (const detect::AtomicityReport& report :
         atomicity_detector.candidates()) {
      AtomicityConfirmer confirmer(
          AtomicityCandidate{report.block_begin, report.block_end,
                             report.interleaver},
          options.pause);
      instr::ScopedListener registration(confirmer);
      workload();
      ++result.candidates_tried;
      for (const ConfirmedBug& bug : confirmer.confirmed()) {
        result.bugs.push_back(bug);
      }
    }
  }
  return result;
}

}  // namespace cbp::fuzz
