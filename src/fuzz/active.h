// CalFuzzer-style active testing (Joshi et al., CAV'09; paper §5
// Methodology I).
//
// Phase 1: a detector pass over a workload yields *candidate* conflicts
// (race site pairs, crossed lock pairs).  Phase 2: a confirmer listener
// re-runs the workload, pausing threads that reach a candidate site to
// maximize overlap; if the complementary thread arrives with the same
// conflict object, the bug is *confirmed* and a paper-style report is
// produced.  Each confirmed bug maps mechanically onto a concurrent
// breakpoint insertion (ConfirmedBug::breakpoint_suggestion), which is
// exactly how the paper's Methodology I consumes CalFuzzer reports.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "detect/reports.h"
#include "instrument/hub.h"
#include "runtime/thread_registry.h"

namespace cbp::fuzz {

/// A potential data race to confirm: two access sites (from a
/// RaceReport).
struct RaceCandidate {
  instr::SourceLoc site_a;
  instr::SourceLoc site_b;
};

/// A potential deadlock to confirm: two locks acquired in crossing
/// orders (from a DeadlockReport 2-cycle).
struct DeadlockCandidate {
  const void* lock_a = nullptr;
  const void* lock_b = nullptr;
};

/// A potential atomicity violation to confirm (the paper's third bug
/// class, via the randomized atomicity analysis it cites): a thread
/// accesses an object at `block_begin` and again at `block_end` (the
/// intended-atomic block), while another thread can access the same
/// object at `interleaver`.
struct AtomicityCandidate {
  instr::SourceLoc block_begin;
  instr::SourceLoc block_end;
  instr::SourceLoc interleaver;
};

/// A confirmed concurrency bug, with its Methodology-I breakpoint recipe.
struct ConfirmedBug {
  enum class Kind { kRace, kDeadlock, kAtomicity };
  Kind kind = Kind::kRace;
  instr::SourceLoc site_a;  ///< first-action side
  instr::SourceLoc site_b;
  instr::SourceLoc site_c;  ///< atomicity only: the block-end site
  const void* object = nullptr;  ///< racy address or first lock
  const void* object_b = nullptr;  ///< second lock (deadlocks only)
  rt::ThreadId tid_a = 0;
  rt::ThreadId tid_b = 0;

  /// Paper-style bug report text.
  [[nodiscard]] std::string report() const;

  /// The two trigger_here insertions that reproduce this bug
  /// (Methodology I).
  [[nodiscard]] std::string breakpoint_suggestion(
      const std::string& breakpoint_name) const;
};

/// Confirms data-race candidates by pausing threads at candidate sites.
class RaceConfirmer : public instr::Listener {
 public:
  RaceConfirmer(RaceCandidate candidate, std::chrono::microseconds pause);

  void on_access(const instr::AccessEvent& event) override;

  [[nodiscard]] std::vector<ConfirmedBug> confirmed() const;

 private:
  [[nodiscard]] bool site_matches(const instr::SourceLoc& loc) const;

  RaceCandidate candidate_;
  std::chrono::microseconds pause_;

  struct Pending {
    const void* addr;
    rt::ThreadId tid;
    instr::SourceLoc loc;
    bool matched = false;
  };

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Pending*> pending_;      // guarded by mu_
  std::vector<ConfirmedBug> confirmed_bugs_;  // guarded by mu_
};

/// Thrown in *both* participating threads when a DeadlockConfirmer
/// confirms a crossing: the throw happens from the kLockRequest hook,
/// before the second lock is actually acquired, so RAII unwinding
/// releases the held locks and the process never truly deadlocks.
class DeadlockConfirmedError : public std::runtime_error {
 public:
  DeadlockConfirmedError() : std::runtime_error("deadlock confirmed") {}
};

/// Confirms deadlock candidates by pausing a thread that holds one lock
/// of the candidate pair just before it requests the other.  When the
/// complementary thread arrives, the crossing is recorded and BOTH
/// threads receive DeadlockConfirmedError (see above) — the tool
/// equivalent of CalFuzzer reporting a real deadlock without hanging the
/// test process.
class DeadlockConfirmer : public instr::Listener {
 public:
  DeadlockConfirmer(DeadlockCandidate candidate,
                    std::chrono::microseconds pause);

  void on_sync(const instr::SyncEvent& event) override;

  [[nodiscard]] std::vector<ConfirmedBug> confirmed() const;

  /// True once a confirmation happened (cheap check for worker loops).
  [[nodiscard]] bool any_confirmed() const;

 private:
  DeadlockCandidate candidate_;
  std::chrono::microseconds pause_;

  struct Pending {
    const void* wanted;
    rt::ThreadId tid;
    instr::SourceLoc loc;
    bool matched = false;
  };

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Pending*> pending_;             // guarded by mu_
  std::vector<ConfirmedBug> confirmed_bugs_;  // guarded by mu_
  std::atomic<bool> any_{false};
};

/// Confirms atomicity-violation candidates: a thread reaching the
/// block-end site with its block "open" (it passed block_begin on the
/// same object) is paused; if the complementary thread reaches the
/// interleaver site on that object meanwhile, the violation is feasible
/// and recorded.  Both threads then proceed (block-end last, so the
/// interleaving is live).
class AtomicityConfirmer : public instr::Listener {
 public:
  AtomicityConfirmer(AtomicityCandidate candidate,
                     std::chrono::microseconds pause);

  void on_access(const instr::AccessEvent& event) override;

  [[nodiscard]] std::vector<ConfirmedBug> confirmed() const;

 private:
  AtomicityCandidate candidate_;
  std::chrono::microseconds pause_;

  struct OpenBlock {
    const void* addr = nullptr;
    bool matched = false;  ///< interleaver arrived inside the block
  };

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::unordered_map<rt::ThreadId, OpenBlock> open_;  // guarded by mu_
  std::vector<ConfirmedBug> confirmed_bugs_;          // guarded by mu_
};

/// Convenience pipeline for Methodology I, phase 1: runs `workload` under
/// a FastTrack detector and returns the race reports as candidates.
std::vector<RaceCandidate> find_race_candidates(
    const std::function<void()>& workload);

/// Convenience pipeline for Methodology I, phase 1 (deadlocks): runs
/// `workload` under a lock-order-graph detector and returns 2-cycle
/// candidates.
std::vector<DeadlockCandidate> find_deadlock_candidates(
    const std::function<void()>& workload);

/// Convenience pipeline for Methodology I, phase 1 (atomicity): runs
/// `workload` under the block-pattern candidate detector.
std::vector<AtomicityCandidate> find_atomicity_candidates(
    const std::function<void()>& workload);

/// One-call CalFuzzer-style session: phase 1 runs `workload` once under
/// all candidate detectors; phase 2 re-runs it once per candidate with
/// the matching confirmer attached.  Returns every confirmed bug.
///
/// The workload must be re-runnable, and its threads must catch
/// DeadlockConfirmedError (the deadlock confirmer's escape) when
/// deadlock confirmation is enabled.
struct SessionOptions {
  std::chrono::microseconds pause{100'000};
  bool races = true;
  bool deadlocks = true;
  bool atomicity = true;
};

struct SessionResult {
  std::vector<ConfirmedBug> bugs;
  int candidates_tried = 0;
};

SessionResult run_active_testing(const std::function<void()>& workload,
                                 SessionOptions options = {});

}  // namespace cbp::fuzz
