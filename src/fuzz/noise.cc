#include "fuzz/noise.h"

#include <thread>

#include "runtime/vclock.h"

namespace cbp::fuzz {

NoiseInjector::NoiseInjector(NoiseOptions options)
    : options_(options), rng_(options.seed) {}

void NoiseInjector::maybe_sleep() {
  std::chrono::microseconds sleep_for{0};
  {
    std::scoped_lock lock(rng_mu_);
    if (!rng_.next_bool(options_.probability)) return;
    const auto lo = options_.min_sleep.count();
    const auto hi = options_.max_sleep.count();
    sleep_for = std::chrono::microseconds(rng_.next_in(lo, hi));
  }
  injected_.fetch_add(1, std::memory_order_relaxed);
  // Note the draw above is on the *nominal* window: the clock policy
  // scales the sleep, not the randomness, so seeds reproduce the same
  // decision sequence under real, scaled and virtual clocks.
  rt::clock_sleep_for(sleep_for);
}

void NoiseInjector::on_access(const instr::AccessEvent& event) {
  (void)event;
  if (options_.at_accesses) maybe_sleep();
}

void NoiseInjector::on_sync(const instr::SyncEvent& event) {
  if (options_.at_lock_requests &&
      event.kind == instr::SyncEvent::Kind::kLockRequest) {
    maybe_sleep();
  }
}

}  // namespace cbp::fuzz
