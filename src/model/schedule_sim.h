// Monte-Carlo schedule simulator validating the §3 probability model.
//
// Two independent threads each visit the breakpoint state m times at
// uniformly random (distinct) positions on a shared timeline of length
// N + M(T-1) (the paper's "a thread now takes N + MT time steps").
// BTRIGGER stretches every local-predicate visit into a pause of T time
// units; a hit occurs when one thread *arrives* at a breakpoint state
// while the other is *paused* at one, i.e. when some pair of visit
// starts is within T of each other.  T = 1 (no stretching) degenerates
// to the unaided model: exact coincidence of visit slots.
#pragma once

#include <cstdint>

#include "runtime/rng.h"

namespace cbp::model {

struct SimParams {
  std::uint64_t n_steps = 10'000;   ///< N: per-thread real steps
  std::uint64_t m_visits = 10;      ///< m: full-predicate visits
  std::uint64_t big_m_visits = 10;  ///< M: local-predicate visits (>= m)
  std::uint64_t pause_steps = 1;    ///< T: pause length (1 = unaided)
  std::uint64_t trials = 10'000;
  std::uint64_t seed = 2026;
};

struct SimResult {
  std::uint64_t hits = 0;
  std::uint64_t trials = 0;
  [[nodiscard]] double probability() const {
    return trials == 0 ? 0.0
                       : static_cast<double>(hits) / static_cast<double>(trials);
  }
};

/// Estimates the hit probability by simulation.
SimResult simulate(const SimParams& params);

/// One trial (exposed for property tests): true iff the two visit sets
/// produce a hit under pause length T.
bool simulate_one(const SimParams& params, rt::Rng& rng);

}  // namespace cbp::model
