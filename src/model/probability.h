// Closed-form probability model of §3 of the paper.
//
// Setting: two independent threads, each executing N steps.  A thread
// visits states satisfying its *local* predicate M times and states
// satisfying the *full* breakpoint m times (m <= M), uniformly at random.
//
//   Unaided:   P(hit) = 1 - C(N-m, m) / C(N, m)
//              <= 1 - (1 - m/(N-m+1))^m   ~=  m^2/(N-m+1)   (m << N)
//   BTRIGGER:  P(hit) >= 1 - (1 - mT/(N+MT-M))^m        ~=  m^2 T/(N+MT-M)
//   Gain:      >= T(N-m+1) / (N+MT-M)
//
// (Each factor of C(N-m,m)/C(N,m) = prod_{i<m} (N-m-i)/(N-i) is at least
// 1 - m/(N-m+1), giving the upper bound; the binomial theorem gives the
// m^2 approximations, which is also how the gain factor arises as the
// ratio of the two approximations.)
//
// All functions compute in log space so N can be large.
#pragma once

#include <cstdint>

namespace cbp::model {

/// ln C(n, k); 0 for degenerate inputs.
double log_binomial(std::uint64_t n, std::uint64_t k);

/// Exact unaided hit probability: 1 - C(N-m, m)/C(N, m).
/// Returns 1.0 when 2m > N (the visit sets must intersect).
double p_hit_unaided(std::uint64_t n_steps, std::uint64_t m_visits);

/// Upper bound for the unaided probability: 1 - (1 - m/(N-m+1))^m.
double p_hit_unaided_bound(std::uint64_t n_steps, std::uint64_t m_visits);

/// First-order approximation of the unaided probability: m^2/(N-m+1),
/// clamped to [0, 1].
double p_hit_unaided_approx(std::uint64_t n_steps, std::uint64_t m_visits);

/// The paper's lower bound with BTRIGGER pausing each of the M
/// local-predicate states for T steps: 1 - (1 - mT/(N+MT-M))^m.
double p_hit_btrigger(std::uint64_t n_steps, std::uint64_t m_visits,
                      std::uint64_t big_m_visits, std::uint64_t pause_steps);

/// First-order approximation m^2 T / (N + MT - M), clamped to [0, 1].
double p_hit_btrigger_approx(std::uint64_t n_steps, std::uint64_t m_visits,
                             std::uint64_t big_m_visits,
                             std::uint64_t pause_steps);

/// The paper's gain factor T(N - m + 1)/(N + MT - M).
double gain_factor(std::uint64_t n_steps, std::uint64_t m_visits,
                   std::uint64_t big_m_visits, std::uint64_t pause_steps);

// ---------------------------------------------------------------------------
// Observed-estimate front end (used by the obs telemetry report, §6.2).
//
// Live runs don't hand us the model's N, M, m, T directly; the engine's
// counters and the event trace yield *estimates* that may be degenerate
// (m > M, M > N, T == 0).  ModelInputs::sanitized() folds them into the
// model's domain so the closed forms above stay meaningful, and
// predicted_hit_rates evaluates both regimes on the sanitized inputs.
// ---------------------------------------------------------------------------

/// Estimated model inputs for one breakpoint.
struct ModelInputs {
  std::uint64_t n_steps = 0;      ///< N: steps per thread per run
  std::uint64_t m_visits = 0;     ///< m: full-predicate states per thread
  std::uint64_t big_m_visits = 0; ///< M: local-predicate states per thread
  std::uint64_t pause_steps = 0;  ///< T: postponement measured in steps

  /// Clamps into the model's domain: N >= 1, 1 <= m <= M <= N, T >= 1.
  [[nodiscard]] ModelInputs sanitized() const;
};

/// Predicted hit probabilities for one run under both regimes.
struct PredictedRates {
  double unaided = 0.0;   ///< p_hit_unaided on the sanitized inputs
  double btrigger = 0.0;  ///< p_hit_btrigger lower bound
  double gain = 1.0;      ///< gain_factor
};

PredictedRates predicted_hit_rates(const ModelInputs& inputs);

/// A two-sided probability interval [low, high] in [0, 1].
struct Interval {
  double low = 0.0;
  double high = 1.0;
};

/// Wilson score interval for `successes` out of `trials` Bernoulli
/// trials (z = 1.96 gives 95%).  Degenerate trials <= 0 yields [0, 1].
/// The statistical companion to the closed forms above: predictions are
/// checked against observed hit counts through this interval.
Interval wilson_interval(int successes, int trials, double z = 1.96);

}  // namespace cbp::model
