#include "model/schedule_sim.h"

#include <algorithm>
#include <vector>

namespace cbp::model {
namespace {

/// Samples m distinct positions in [0, horizon) uniformly (partial
/// Fisher-Yates over indices via rejection for small m).
void sample_positions(std::uint64_t m, std::uint64_t horizon, rt::Rng& rng,
                      std::vector<std::uint64_t>& out) {
  out.clear();
  while (out.size() < m) {
    const std::uint64_t candidate = rng.next_below(horizon);
    if (std::find(out.begin(), out.end(), candidate) == out.end()) {
      out.push_back(candidate);
    }
  }
  std::sort(out.begin(), out.end());
}

}  // namespace

bool simulate_one(const SimParams& params, rt::Rng& rng) {
  // Timeline length with each of the M local-predicate visits stretched
  // from 1 step to T steps.
  const std::uint64_t stretch = params.pause_steps - 1;
  const std::uint64_t horizon =
      params.n_steps + params.big_m_visits * stretch;

  std::vector<std::uint64_t> visits_a, visits_b;
  sample_positions(params.m_visits, horizon, rng, visits_a);
  sample_positions(params.m_visits, horizon, rng, visits_b);

  // Hit iff some visit of one thread starts while the other thread is
  // paused at a visit: |a - b| <= T - 1.  Both lists are sorted; sweep.
  std::size_t i = 0, j = 0;
  const std::uint64_t window = params.pause_steps - 1;
  while (i < visits_a.size() && j < visits_b.size()) {
    const std::uint64_t a = visits_a[i];
    const std::uint64_t b = visits_b[j];
    const std::uint64_t gap = a > b ? a - b : b - a;
    if (gap <= window) return true;
    if (a < b) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

SimResult simulate(const SimParams& params) {
  rt::Rng rng(params.seed);
  SimResult result;
  result.trials = params.trials;
  for (std::uint64_t t = 0; t < params.trials; ++t) {
    if (simulate_one(params, rng)) ++result.hits;
  }
  return result;
}

}  // namespace cbp::model
