#include "model/probability.h"

#include <algorithm>
#include <cmath>

namespace cbp::model {

double log_binomial(std::uint64_t n, std::uint64_t k) {
  if (k > n) return -1e300;  // C(n,k) = 0
  return std::lgamma(static_cast<double>(n) + 1.0) -
         std::lgamma(static_cast<double>(k) + 1.0) -
         std::lgamma(static_cast<double>(n - k) + 1.0);
}

double p_hit_unaided(std::uint64_t n_steps, std::uint64_t m_visits) {
  if (m_visits == 0) return 0.0;
  if (2 * m_visits > n_steps) return 1.0;
  const double log_ratio = log_binomial(n_steps - m_visits, m_visits) -
                           log_binomial(n_steps, m_visits);
  return 1.0 - std::exp(log_ratio);
}

double p_hit_unaided_bound(std::uint64_t n_steps, std::uint64_t m_visits) {
  if (m_visits == 0) return 0.0;
  if (m_visits >= n_steps) return 1.0;
  const double per_visit = static_cast<double>(m_visits) /
                           static_cast<double>(n_steps - m_visits + 1);
  if (per_visit >= 1.0) return 1.0;
  return 1.0 - std::pow(1.0 - per_visit, static_cast<double>(m_visits));
}

double p_hit_unaided_approx(std::uint64_t n_steps, std::uint64_t m_visits) {
  if (m_visits == 0) return 0.0;
  if (m_visits >= n_steps) return 1.0;
  const double m = static_cast<double>(m_visits);
  const double p = m * m / static_cast<double>(n_steps - m_visits + 1);
  return p > 1.0 ? 1.0 : p;
}

double p_hit_btrigger(std::uint64_t n_steps, std::uint64_t m_visits,
                      std::uint64_t big_m_visits, std::uint64_t pause_steps) {
  if (m_visits == 0) return 0.0;
  const double n = static_cast<double>(n_steps);
  const double m = static_cast<double>(m_visits);
  const double big_m = static_cast<double>(big_m_visits);
  const double t = static_cast<double>(pause_steps);
  const double denom = n + big_m * t - big_m;
  if (denom <= 0.0) return 1.0;
  const double per_visit = m * t / denom;
  if (per_visit >= 1.0) return 1.0;
  return 1.0 - std::pow(1.0 - per_visit, m);
}

double p_hit_btrigger_approx(std::uint64_t n_steps, std::uint64_t m_visits,
                             std::uint64_t big_m_visits,
                             std::uint64_t pause_steps) {
  const double n = static_cast<double>(n_steps);
  const double m = static_cast<double>(m_visits);
  const double big_m = static_cast<double>(big_m_visits);
  const double t = static_cast<double>(pause_steps);
  const double denom = n + big_m * t - big_m;
  if (denom <= 0.0) return 1.0;
  const double p = m * m * t / denom;
  return p > 1.0 ? 1.0 : p;
}

ModelInputs ModelInputs::sanitized() const {
  ModelInputs s = *this;
  if (s.n_steps == 0) s.n_steps = 1;
  if (s.m_visits == 0) s.m_visits = 1;
  if (s.big_m_visits < s.m_visits) s.big_m_visits = s.m_visits;
  if (s.big_m_visits > s.n_steps) s.n_steps = s.big_m_visits;
  if (s.pause_steps == 0) s.pause_steps = 1;
  return s;
}

PredictedRates predicted_hit_rates(const ModelInputs& inputs) {
  const ModelInputs s = inputs.sanitized();
  PredictedRates rates;
  rates.unaided = p_hit_unaided(s.n_steps, s.m_visits);
  rates.btrigger =
      p_hit_btrigger(s.n_steps, s.m_visits, s.big_m_visits, s.pause_steps);
  rates.gain =
      gain_factor(s.n_steps, s.m_visits, s.big_m_visits, s.pause_steps);
  return rates;
}

Interval wilson_interval(int successes, int trials, double z) {
  if (trials <= 0) return {0.0, 1.0};
  const double n = trials;
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double half =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  return {std::max(0.0, center - half), std::min(1.0, center + half)};
}

double gain_factor(std::uint64_t n_steps, std::uint64_t m_visits,
                   std::uint64_t big_m_visits, std::uint64_t pause_steps) {
  const double n = static_cast<double>(n_steps);
  const double m = static_cast<double>(m_visits);
  const double big_m = static_cast<double>(big_m_visits);
  const double t = static_cast<double>(pause_steps);
  const double denom = n + big_m * t - big_m;
  if (denom <= 0.0) return 1.0;
  return t * (n - m + 1.0) / denom;
}

}  // namespace cbp::model
