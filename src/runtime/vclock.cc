#include "runtime/vclock.h"

#include <algorithm>
#include <sstream>
#include <thread>

namespace cbp::rt {

namespace {

std::atomic<std::int64_t> g_stall_guard_ms{45000};

}  // namespace

RealClock& real_clock() {
  static RealClock clock;
  return clock;
}

/// Scheduling state of one attached thread.  All fields are guarded by
/// the owning clock's mu_.
struct VirtualClock::ThreadSlot {
  enum class State {
    kReady,     ///< runnable, queued behind ready_seq order
    kRunning,   ///< holds the grant (at most one slot at a time)
    kWaiting,   ///< blocked on a channel and/or virtual deadline
    kDetached,  ///< left the clock; kept for diagnostics
  };

  std::uint64_t id = 0;  ///< registration order (stable identity)
  State state = State::kReady;
  const void* channel = nullptr;
  std::int64_t deadline_ns = VirtualClock::kNoDeadline;
  std::uint64_t wait_seq = 0;   ///< order of wait registration
  std::uint64_t ready_seq = 0;  ///< order in the ready queue
  bool notified = false;        ///< wake reason for the current wait
};

VirtualClock::VirtualClock() : base_(Clock::now()) {}

VirtualClock::~VirtualClock() = default;

std::int64_t VirtualClock::unique_now_ns() {
  // Single writer in steady state (the running thread), but keep it
  // safe for foreign observers with a CAS loop.
  const std::int64_t now = vnow_ns_.load(std::memory_order_relaxed);
  std::int64_t prev = stamp_ns_.load(std::memory_order_relaxed);
  for (;;) {
    const std::int64_t next = std::max(now, prev + 1);
    if (stamp_ns_.compare_exchange_weak(prev, next,
                                        std::memory_order_relaxed)) {
      return next;
    }
  }
}

void VirtualClock::set_stall_guard(std::chrono::milliseconds guard) {
  g_stall_guard_ms.store(guard.count(), std::memory_order_relaxed);
}

std::chrono::milliseconds VirtualClock::stall_guard() {
  return std::chrono::milliseconds(
      g_stall_guard_ms.load(std::memory_order_relaxed));
}

void VirtualClock::schedule_locked() {
  running_ = nullptr;

  // Lowest ready_seq wins: FIFO over wake order, which is itself
  // deterministic because only the single running thread creates
  // ready-queue entries.
  ThreadSlot* next = nullptr;
  for (const auto& slot : slots_) {
    if (slot->state != ThreadSlot::State::kReady) continue;
    if (next == nullptr || slot->ready_seq < next->ready_seq) {
      next = slot.get();
    }
  }

  if (next == nullptr) {
    // Nothing runnable: fast-forward.  The earliest (deadline_ns,
    // wait_seq) timed waiter defines the next instant; untimed waiters
    // never pull time forward (starvation rule — a thread that never
    // blocks with a deadline is simply not here, and a thread blocked
    // without a deadline resolves only via notify).
    ThreadSlot* earliest = nullptr;
    for (const auto& slot : slots_) {
      if (slot->state != ThreadSlot::State::kWaiting) continue;
      if (slot->deadline_ns == kNoDeadline) continue;
      if (earliest == nullptr || slot->deadline_ns < earliest->deadline_ns ||
          (slot->deadline_ns == earliest->deadline_ns &&
           slot->wait_seq < earliest->wait_seq)) {
        earliest = slot.get();
      }
    }
    if (earliest == nullptr) return;  // quiescent; next attach/notify drives
    const std::int64_t now = vnow_ns_.load(std::memory_order_relaxed);
    if (earliest->deadline_ns > now) {
      vnow_ns_.store(earliest->deadline_ns, std::memory_order_relaxed);
      advances_.fetch_add(1, std::memory_order_relaxed);
    }
    earliest->state = ThreadSlot::State::kReady;
    earliest->notified = false;  // woke by expiry
    earliest->ready_seq = next_ready_seq_++;
    next = earliest;
  }

  next->state = ThreadSlot::State::kRunning;
  running_ = next;
  cv_.notify_all();
}

VirtualClock::ThreadSlot* VirtualClock::register_thread() {
  std::unique_lock lock(mu_);
  auto slot = std::make_unique<ThreadSlot>();
  slot->id = slots_.size();
  slot->ready_seq = next_ready_seq_++;
  ThreadSlot* raw = slot.get();
  slots_.push_back(std::move(slot));
  if (running_ == nullptr) {
    // First attach (or attach into a quiescent clock): grant directly.
    raw->state = ThreadSlot::State::kRunning;
    running_ = raw;
  }
  return raw;
}

void VirtualClock::adopt_thread(ThreadSlot* slot) {
  std::unique_lock lock(mu_);
  const auto guard = stall_guard();
  if (!cv_.wait_for(lock, guard, [&] {
        return slot->state == ThreadSlot::State::kRunning;
      })) {
    std::ostringstream os;
    os << "VirtualClock: thread " << slot->id << " waited "
       << guard.count() << " ms for its first grant; an attached thread is "
       << "blocked outside the clock (untracked blocking operation)";
    throw VirtualClockStall(os.str());
  }
}

void VirtualClock::detach_thread(ThreadSlot* slot) {
  std::unique_lock lock(mu_);
  const bool was_running = (running_ == slot);
  slot->state = ThreadSlot::State::kDetached;
  slot->channel = nullptr;
  if (was_running) {
    schedule_locked();
  } else if (running_ == nullptr) {
    // Abnormal exit (e.g. stall-guard unwind while Waiting): give the
    // grant away so the rest of the trial can drain.
    schedule_locked();
  }
}

bool VirtualClock::wait(const void* channel, std::int64_t deadline_ns) {
  std::unique_lock lock(mu_);
  ThreadSlot* self = internal::t_clock_slot;
  if (deadline_ns != kNoDeadline &&
      vnow_ns_.load(std::memory_order_relaxed) >= deadline_ns) {
    return false;
  }
  self->state = ThreadSlot::State::kWaiting;
  self->channel = channel;
  self->deadline_ns = deadline_ns;
  self->wait_seq = next_wait_seq_++;
  self->notified = false;
  schedule_locked();

  const auto guard = stall_guard();
  if (!cv_.wait_for(lock, guard, [&] {
        return self->state == ThreadSlot::State::kRunning;
      })) {
    // Leave a diagnostic trail: who holds the grant, who waits on what.
    std::ostringstream os;
    os << "VirtualClock: thread " << self->id << " starved for "
       << guard.count() << " ms (channel=" << channel
       << ", deadline=" << deadline_ns << "); slots:";
    for (const auto& slot : slots_) {
      os << " [" << slot->id << ":"
         << static_cast<int>(slot->state)
         << (slot.get() == running_ ? "*" : "") << "]";
    }
    os << " — an attached thread is blocked outside the clock";
    self->state = ThreadSlot::State::kDetached;  // stop being schedulable
    throw VirtualClockStall(os.str());
  }
  self->channel = nullptr;
  self->deadline_ns = kNoDeadline;
  return self->notified;
}

void VirtualClock::notify(const void* channel) {
  std::unique_lock lock(mu_);
  // Wake in wait-registration order so the ready queue mirrors the
  // order threads went to sleep — deterministic under serialization.
  std::vector<ThreadSlot*> woken;
  for (const auto& slot : slots_) {
    if (slot->state == ThreadSlot::State::kWaiting &&
        slot->channel == channel) {
      woken.push_back(slot.get());
    }
  }
  std::sort(woken.begin(), woken.end(),
            [](const ThreadSlot* a, const ThreadSlot* b) {
              return a->wait_seq < b->wait_seq;
            });
  for (ThreadSlot* slot : woken) {
    slot->state = ThreadSlot::State::kReady;
    slot->notified = true;
    slot->ready_seq = next_ready_seq_++;
  }
  // Foreign notifier into an otherwise-idle clock (e.g. cancel_all from
  // the harness between trial phases): hand the grant out ourselves.
  if (running_ == nullptr && !woken.empty()) schedule_locked();
}

// ---- bindings -------------------------------------------------------------

ScopedClock::ScopedClock(ClockSource* clock)
    : previous_(internal::t_bound_clock),
      previous_slot_(internal::t_clock_slot) {
  internal::t_bound_clock = clock;
  internal::t_clock_slot = nullptr;
  if (clock != nullptr && clock->mode() == ClockMode::kVirtual) {
    auto* vc = static_cast<VirtualClock*>(clock);
    slot_ = vc->register_thread();
    internal::t_clock_slot = slot_;
    vc->adopt_thread(slot_);
  }
}

ScopedClock::~ScopedClock() {
  if (slot_ != nullptr) {
    static_cast<VirtualClock*>(internal::t_bound_clock)
        ->detach_thread(slot_);
  }
  internal::t_bound_clock = previous_;
  internal::t_clock_slot = previous_slot_;
}

AdoptedClock::AdoptedClock(ClockSource* clock, VirtualClock::ThreadSlot* slot)
    : previous_(internal::t_bound_clock),
      previous_slot_(internal::t_clock_slot),
      slot_(slot) {
  internal::t_bound_clock = clock;
  internal::t_clock_slot = slot;
  if (slot != nullptr) {
    static_cast<VirtualClock*>(clock)->adopt_thread(slot);
  }
}

AdoptedClock::~AdoptedClock() {
  if (slot_ != nullptr) {
    static_cast<VirtualClock*>(internal::t_bound_clock)
        ->detach_thread(slot_);
  }
  internal::t_bound_clock = previous_;
  internal::t_clock_slot = previous_slot_;
}

// ---- helpers --------------------------------------------------------------

TimePoint clock_now() {
  if (ClockSource* clock = bound_clock()) return clock->now();
  return Clock::now();
}

Duration clock_adjust(Duration nominal, double scale_hint) {
  if (ClockSource* clock = bound_clock()) {
    return clock->adjust(nominal, scale_hint);
  }
  if (scale_hint > 0.0) return TimeScale::apply_scale(nominal, scale_hint);
  return TimeScale::apply(nominal);
}

void clock_sleep_for(Duration nominal, double scale_hint) {
  if (VirtualClock* vc = bound_virtual_clock()) {
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        vc->adjust(nominal, scale_hint))
                        .count();
    if (ns <= 0) return;
    // A fresh channel address no notifier knows: resolves only by
    // deadline expiry, i.e. a pure virtual sleep.
    int unique = 0;
    vc->wait(&unique, vc->now_ns() + ns);
    return;
  }
  const Duration adjusted = clock_adjust(nominal, scale_hint);
  if (adjusted > Duration::zero()) std::this_thread::sleep_for(adjusted);
}

}  // namespace cbp::rt
