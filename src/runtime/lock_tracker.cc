#include "runtime/lock_tracker.h"

#include <algorithm>

namespace cbp::rt {
namespace {

std::vector<HeldLock>& tls_stack() {
  thread_local std::vector<HeldLock> stack;
  return stack;
}

}  // namespace

void note_lock_acquired(const void* lock, std::string_view tag) {
  tls_stack().push_back(HeldLock{lock, tag});
}

void note_lock_released(const void* lock) {
  auto& stack = tls_stack();
  // Innermost match: locks are normally released LIFO, but tolerate
  // hand-over-hand patterns by searching from the top.
  for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
    if (it->lock == lock) {
      stack.erase(std::next(it).base());
      return;
    }
  }
}

bool is_lock_held(const void* lock) {
  const auto& stack = tls_stack();
  return std::any_of(stack.begin(), stack.end(),
                     [lock](const HeldLock& h) { return h.lock == lock; });
}

bool is_lock_type_held(std::string_view tag) {
  const auto& stack = tls_stack();
  return std::any_of(stack.begin(), stack.end(),
                     [tag](const HeldLock& h) { return h.tag == tag; });
}

std::size_t held_lock_count() { return tls_stack().size(); }

std::vector<HeldLock> held_locks() { return tls_stack(); }

}  // namespace cbp::rt
