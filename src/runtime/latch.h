// Small synchronization helpers used by replicas, tests and benches:
// a counting latch, a reusable barrier, and a one-shot starting gate that
// maximizes thread overlap at experiment start.
//
// All waits/notifies route through the clock helpers (runtime/vclock.h)
// so a trial running under a virtual clock schedules these blocks
// instead of parking in the kernel; with no clock bound they compile
// down to the plain condition-variable protocol.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>

#include "runtime/vclock.h"

namespace cbp::rt {

/// Counting latch: count_down() n times releases all wait()ers.
class Latch {
 public:
  explicit Latch(std::ptrdiff_t count) : count_(count) {}

  void count_down(std::ptrdiff_t n = 1) {
    std::scoped_lock lock(mu_);
    count_ -= n;
    if (count_ <= 0) clock_notify_all(cv_);
  }

  void wait() {
    std::unique_lock lock(mu_);
    clock_wait(cv_, lock, [this] { return count_ <= 0; });
  }

  bool try_wait() {
    std::scoped_lock lock(mu_);
    return count_ <= 0;
  }

  template <class Rep, class Period>
  bool wait_for(std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock lock(mu_);
    return clock_wait_for(cv_, lock, timeout,
                          [this] { return count_ <= 0; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::ptrdiff_t count_;  // guarded by mu_
};

/// Reusable barrier for `parties` threads.
class Barrier {
 public:
  explicit Barrier(std::size_t parties) : parties_(parties) {}

  /// Blocks until all parties arrive; generation counter makes it reusable.
  void arrive_and_wait() {
    std::unique_lock lock(mu_);
    const std::size_t gen = generation_;
    if (++arrived_ == parties_) {
      arrived_ = 0;
      ++generation_;
      clock_notify_all(cv_);
      return;
    }
    clock_wait(cv_, lock, [this, gen] { return generation_ != gen; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::size_t parties_;
  std::size_t arrived_ = 0;    // guarded by mu_
  std::size_t generation_ = 0; // guarded by mu_
};

/// One-shot gate: workers block in wait(); open() releases them together.
class StartGate {
 public:
  void wait() {
    std::unique_lock lock(mu_);
    clock_wait(cv_, lock, [this] { return open_; });
  }

  void open() {
    std::scoped_lock lock(mu_);
    open_ = true;
    clock_notify_all(cv_);
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = false;  // guarded by mu_
};

}  // namespace cbp::rt
