// Clock sources and the discrete-event virtual clock (DESIGN.md §5g).
//
// Every nominal duration in the system (postponement timeout T, stall
// thresholds, ignore-first windows, app think-time, noise) historically
// became a *kernel* wait scaled by rt::TimeScale.  That makes trials pay
// real wall-clock for the paper's pause times: BENCH_trials.json showed
// sub-1x parallel speedups on short trials because workers sat in
// sleep/wait_for, not on the CPU.
//
// ClockSource turns "how does a nominal duration become a wait" into a
// policy object with three modes:
//
//   * real    — nominal durations verbatim (scale pinned to 1.0);
//   * scaled  — the historical behaviour: TimeScale (or a per-engine
//     pin) multiplies every nominal duration before a kernel wait;
//   * virtual — a per-trial discrete-event clock.  A thread that would
//     block with a timeout registers a virtual deadline instead of
//     calling the kernel; when every attached thread of the trial is
//     blocked, the clock fast-forwards to the earliest deadline and
//     wakes exactly that waiter, deterministically ordered by
//     (deadline, registration seq).  Pause time T costs nothing.
//
// The virtual clock is *cooperative*: at most one attached thread is
// Running at any instant, and the grant is handed off at wait points in
// a deterministic order.  That is what makes virtual trials replayable:
// every state transition (postpone, match, notify, expiry) is executed
// by the single running thread, so identical seeds produce identical
// stats and identical trace event order, independent of hardware timing
// and of --trial-jobs.  Parallelism comes from running many trials —
// each with its own clock — concurrently, not from within one trial.
//
// Contract: while a virtual clock is bound, every blocking operation of
// the attached thread tree must route through the clock helpers below
// (the rt primitives, instrumented mutexes, the engine and the fuzz
// layer all do).  An untracked block would freeze the trial; block()
// carries a real-time stall guard that aborts with a diagnostic instead
// of hanging.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "runtime/clock.h"

namespace cbp::rt {

/// Abstract timing policy.  `now()` is the active clock's timestamp
/// (obs traces and replica stopwatches read it so event order follows
/// the clock actually driving the run); `adjust()` maps a nominal
/// duration to the duration actually waited.
class ClockSource {
 public:
  virtual ~ClockSource() = default;
  [[nodiscard]] virtual ClockMode mode() const noexcept = 0;
  [[nodiscard]] virtual TimePoint now() const = 0;
  /// Policy scaling of a nominal duration.  `scale_hint` > 0 overrides
  /// the global TimeScale (the per-engine pin); virtual time ignores
  /// scaling entirely — waits are free, so nominal values are used
  /// verbatim.
  [[nodiscard]] virtual Duration adjust(Duration nominal,
                                        double scale_hint) const = 0;
};

/// The `real` policy: kernel waits at nominal durations, scale pinned
/// to 1.0 regardless of the global TimeScale.  Stateless; share the
/// singleton via real_clock().
class RealClock final : public ClockSource {
 public:
  [[nodiscard]] ClockMode mode() const noexcept override {
    return ClockMode::kReal;
  }
  [[nodiscard]] TimePoint now() const override { return Clock::now(); }
  [[nodiscard]] Duration adjust(Duration nominal,
                                double /*scale_hint*/) const override {
    return nominal < Duration::zero() ? Duration::zero() : nominal;
  }
};

/// Process-wide RealClock instance (it has no state to isolate).
[[nodiscard]] RealClock& real_clock();

/// Thrown when a thread attached to a VirtualClock waits longer than the
/// real-time stall guard without the clock making progress — the
/// signature of an *untracked* blocking operation somewhere in the
/// thread tree (see the file comment).  Deliberately not StallError:
/// replicas catch that one as a simulated artifact.
class VirtualClockStall : public std::runtime_error {
 public:
  explicit VirtualClockStall(const std::string& what_arg)
      : std::runtime_error(what_arg) {}
};

/// Discrete-event virtual clock; one per trial.  All methods are
/// thread-safe.  See the file comment for the execution model.
class VirtualClock final : public ClockSource {
 public:
  static constexpr std::int64_t kNoDeadline =
      std::numeric_limits<std::int64_t>::max();

  VirtualClock();
  ~VirtualClock() override;
  VirtualClock(const VirtualClock&) = delete;
  VirtualClock& operator=(const VirtualClock&) = delete;

  [[nodiscard]] ClockMode mode() const noexcept override {
    return ClockMode::kVirtual;
  }
  [[nodiscard]] TimePoint now() const override {
    return base_ + std::chrono::nanoseconds(
                       vnow_ns_.load(std::memory_order_relaxed));
  }
  [[nodiscard]] Duration adjust(Duration nominal,
                                double /*scale_hint*/) const override {
    return nominal < Duration::zero() ? Duration::zero() : nominal;
  }

  /// Virtual nanoseconds since the clock's birth.
  [[nodiscard]] std::int64_t now_ns() const {
    return vnow_ns_.load(std::memory_order_relaxed);
  }

  /// Strictly monotonic stamp for trace events: equals now_ns() except
  /// that ties are broken by execution order.  Because execution under
  /// the clock is serialized, consecutive calls observe a deterministic
  /// total order — this is what makes obs event order reproducible.
  [[nodiscard]] std::int64_t unique_now_ns();

  /// Number of fast-forwards performed so far.
  [[nodiscard]] std::uint64_t advances() const {
    return advances_.load(std::memory_order_relaxed);
  }

  // ---- thread lifecycle ------------------------------------------------
  // A slot is created by the *spawning* thread (deterministic ready
  // order), adopted on the new thread, and detached when the thread
  // leaves the clock.  ScopedClock / rt::Thread drive these; user code
  // never calls them directly.

  struct ThreadSlot;

  /// Registers a new schedulable thread.  If no thread is currently
  /// running (first attach), the slot is granted immediately; otherwise
  /// it queues as Ready behind the current wake order.
  ThreadSlot* register_thread();

  /// Called on the slot's own thread: installs it as the calling
  /// thread's identity and blocks until the scheduler grants it.
  void adopt_thread(ThreadSlot* slot);

  /// Removes the calling thread from scheduling and hands the grant to
  /// the next ready thread (fast-forwarding if everyone is waiting).
  void detach_thread(ThreadSlot* slot);

  // ---- waiting ---------------------------------------------------------

  /// Blocks the calling (running) thread until `channel` is notified or
  /// virtual time reaches `deadline_ns` (kNoDeadline = wait for notify
  /// only).  Returns true when notified, false on deadline expiry.  The
  /// caller must not hold any lock a *runnable* thread could need — cv
  /// wrappers release the user mutex first (clock helpers below do).
  bool wait(const void* channel, std::int64_t deadline_ns);

  /// Marks every waiter on `channel` ready (they re-check their
  /// predicates when granted, in wait-registration order).  Callable
  /// from attached and foreign threads alike.
  void notify(const void* channel);

  /// Real-time limit a blocked attached thread will tolerate without a
  /// grant before throwing VirtualClockStall.  Process-wide; tests
  /// shrink it to fail fast.
  static void set_stall_guard(std::chrono::milliseconds guard);
  static std::chrono::milliseconds stall_guard();

 private:
  /// Picks the next thread to run: the lowest ready_seq Ready slot, or —
  /// when every attached thread is Waiting — fast-forwards vnow to the
  /// earliest (deadline, wait_seq) and readies that waiter.  Called with
  /// mu_ held whenever the grant is released.
  void schedule_locked();

  const TimePoint base_;  ///< real time at clock birth (timestamp origin)
  std::atomic<std::int64_t> vnow_ns_{0};
  std::atomic<std::int64_t> stamp_ns_{-1};  ///< last unique_now_ns issued
  std::atomic<std::uint64_t> advances_{0};

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::unique_ptr<ThreadSlot>> slots_;  // guarded by mu_
  ThreadSlot* running_ = nullptr;                   // guarded by mu_
  std::uint64_t next_ready_seq_ = 0;                // guarded by mu_
  std::uint64_t next_wait_seq_ = 0;                 // guarded by mu_
};

// ---- thread-bound active clock ------------------------------------------
// Mirrors the engine's thread-bound context (runtime/context.h): a trial
// binds its clock to the trial's main thread and rt::Thread propagates
// the binding (and the slot registration) to every spawned child.

namespace internal {
inline thread_local ClockSource* t_bound_clock = nullptr;
inline thread_local VirtualClock::ThreadSlot* t_clock_slot = nullptr;
}  // namespace internal

/// The clock bound to the calling thread, or null (= real/scaled
/// behaviour driven by the global TimeScale).
[[nodiscard]] inline ClockSource* bound_clock() noexcept {
  return internal::t_bound_clock;
}

/// The bound clock iff it is a virtual clock.
[[nodiscard]] inline VirtualClock* bound_virtual_clock() noexcept {
  ClockSource* clock = internal::t_bound_clock;
  if (clock != nullptr && clock->mode() == ClockMode::kVirtual) {
    return static_cast<VirtualClock*>(clock);
  }
  return nullptr;
}

/// RAII: binds `clock` to the calling thread; when the clock is
/// virtual, also registers + adopts the thread as its first schedulable
/// thread.  Null `clock` is a no-op binding (keeps call sites simple).
class ScopedClock {
 public:
  explicit ScopedClock(ClockSource* clock);
  ~ScopedClock();
  ScopedClock(const ScopedClock&) = delete;
  ScopedClock& operator=(const ScopedClock&) = delete;

 private:
  ClockSource* previous_;
  VirtualClock::ThreadSlot* previous_slot_;
  VirtualClock::ThreadSlot* slot_ = nullptr;
};

/// Child-thread side of the binding: installs an already-registered
/// slot (created by the spawning thread, so ready order is
/// deterministic) and adopts it.  Used by rt::Thread's wrapper.
class AdoptedClock {
 public:
  AdoptedClock(ClockSource* clock, VirtualClock::ThreadSlot* slot);
  ~AdoptedClock();
  AdoptedClock(const AdoptedClock&) = delete;
  AdoptedClock& operator=(const AdoptedClock&) = delete;

 private:
  ClockSource* previous_;
  VirtualClock::ThreadSlot* previous_slot_;
  VirtualClock::ThreadSlot* slot_;
};

// ---- clock-aware timing helpers ------------------------------------------
// These are the only faces the rest of the codebase needs: they fall
// through to the historical TimeScale/kernel behaviour when no virtual
// clock is bound, so real-mode hot paths are one thread-local load and
// a predicted branch away from their previous shape.

/// Applies the active clock's policy to a nominal duration:
/// TimeScale::apply (or the per-engine `scale_hint` pin) outside a
/// virtual clock; the nominal value verbatim inside one.
[[nodiscard]] Duration clock_adjust(Duration nominal, double scale_hint = 0.0);

/// Sleeps for the policy-adjusted equivalent of `nominal`.  Under a
/// virtual clock this registers a deadline and yields — zero kernel
/// time.  Zero/negative adjusted durations skip the kernel entirely.
void clock_sleep_for(Duration nominal, double scale_hint = 0.0);

/// clock_now() is declared in runtime/clock.h (Stopwatch reads it).

/// Notifies both worlds: the native condition variable and — when the
/// caller runs under a virtual clock — the clock channel keyed by the
/// cv's address.  Every notify site whose waiters use clock_wait* must
/// go through these.
template <class CV>
void clock_notify_all(CV& cv) {
  cv.notify_all();
  if (VirtualClock* vc = bound_virtual_clock()) vc->notify(&cv);
}

template <class CV>
void clock_notify_one(CV& cv) {
  cv.notify_one();
  // Virtual waiters re-check their predicates on grant, so waking all
  // of them preserves notify_one semantics (one consumes, others
  // re-wait) while keeping the wake order deterministic.
  if (VirtualClock* vc = bound_virtual_clock()) vc->notify(&cv);
}

namespace internal {

/// Virtual-mode predicate wait: release the user lock, yield to the
/// scheduler until the cv's channel is notified or `deadline_ns`
/// passes, re-acquire, re-check.  Mirrors cv.wait_until semantics.
template <class Lock, class Pred>
bool vc_wait(VirtualClock& vc, const void* channel, Lock& lock,
             std::int64_t deadline_ns, Pred& pred) {
  for (;;) {
    if (pred()) return true;
    if (deadline_ns != VirtualClock::kNoDeadline &&
        vc.now_ns() >= deadline_ns) {
      return pred();
    }
    lock.unlock();
    const bool notified = vc.wait(channel, deadline_ns);
    lock.lock();
    if (!notified) return pred();  // deadline expired
  }
}

}  // namespace internal

/// cv.wait_for with the active clock's notion of time.  `adjusted` is
/// already in the active clock's timebase (callers apply clock_adjust
/// to nominal values first, exactly like the old TimeScale::apply +
/// wait_for pairing).
template <class CV, class Lock, class Pred>
bool clock_wait_for(CV& cv, Lock& lock, Duration adjusted, Pred pred) {
  if (VirtualClock* vc = bound_virtual_clock()) {
    const auto ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(adjusted).count();
    const std::int64_t deadline =
        ns <= 0 ? vc->now_ns() : vc->now_ns() + ns;
    return internal::vc_wait(*vc, &cv, lock, deadline, pred);
  }
  return cv.wait_for(lock, adjusted, std::move(pred));
}

/// cv.wait_until against the active clock's timeline (`deadline` must
/// come from clock_now() arithmetic).
template <class CV, class Lock, class Pred>
bool clock_wait_until(CV& cv, Lock& lock, TimePoint deadline, Pred pred) {
  if (VirtualClock* vc = bound_virtual_clock()) {
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        deadline - vc->now())
                        .count();
    const std::int64_t deadline_ns =
        ns <= 0 ? vc->now_ns() : vc->now_ns() + ns;
    return internal::vc_wait(*vc, &cv, lock, deadline_ns, pred);
  }
  return cv.wait_until(lock, deadline, std::move(pred));
}

/// Untimed cv.wait.  Virtual-mode waiters with no deadline still count
/// as blocked, but the clock never fast-forwards *for* them: an
/// untimed wait resolves only through a notify.
template <class CV, class Lock, class Pred>
void clock_wait(CV& cv, Lock& lock, Pred pred) {
  if (VirtualClock* vc = bound_virtual_clock()) {
    internal::vc_wait(*vc, &cv, lock, VirtualClock::kNoDeadline, pred);
    return;
  }
  cv.wait(lock, std::move(pred));
}

/// Mutex acquisition under the active clock.  `mu` must expose
/// try_lock(); `channel` is notified by the unlock site (see
/// clock_notify_unlock).  Returns false when `adjusted` elapses first
/// (kNoDeadline semantics when adjusted < 0: wait forever).
template <class Mutex>
bool clock_lock(Mutex& mu, Duration adjusted) {
  VirtualClock* vc = bound_virtual_clock();
  if (vc == nullptr) {
    if (adjusted < Duration::zero()) {
      mu.lock();
      return true;
    }
    return mu.try_lock_for(adjusted);
  }
  const std::int64_t deadline =
      adjusted < Duration::zero()
          ? VirtualClock::kNoDeadline
          : vc->now_ns() + std::chrono::duration_cast<std::chrono::nanoseconds>(
                               adjusted)
                               .count();
  while (!mu.try_lock()) {
    if (deadline != VirtualClock::kNoDeadline && vc->now_ns() >= deadline) {
      return false;
    }
    vc->wait(&mu, deadline);
  }
  return true;
}

/// Untimed clock_lock: block until acquired.
template <class Mutex>
void clock_lock(Mutex& mu) {
  VirtualClock* vc = bound_virtual_clock();
  if (vc == nullptr) {
    mu.lock();
    return;
  }
  while (!mu.try_lock()) vc->wait(&mu, VirtualClock::kNoDeadline);
}

/// Unlock-side pairing of clock_lock: wakes virtual waiters blocked on
/// acquiring `mu`.  Call *after* the native unlock.
template <class Mutex>
void clock_notify_unlock(Mutex& mu) {
  if (VirtualClock* vc = bound_virtual_clock()) vc->notify(&mu);
}

}  // namespace cbp::rt
