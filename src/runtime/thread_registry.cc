#include "runtime/thread_registry.h"

#include <atomic>
#include <mutex>
#include <unordered_map>
#include <utility>

namespace cbp::rt {
namespace {

std::atomic<std::uint64_t> g_epoch{0};
std::atomic<ThreadId> g_next_id{0};

std::mutex g_names_mu;
std::unordered_map<ThreadId, std::string> g_names;  // guarded by g_names_mu

struct TlsSlot {
  std::uint64_t epoch = ~0ULL;
  ThreadId id = 0;
};

TlsSlot& tls_slot() {
  thread_local TlsSlot slot;
  return slot;
}

}  // namespace

ThreadId this_thread_id() {
  TlsSlot& slot = tls_slot();
  const std::uint64_t epoch = g_epoch.load(std::memory_order_acquire);
  if (slot.epoch != epoch) {
    slot.epoch = epoch;
    slot.id = g_next_id.fetch_add(1, std::memory_order_relaxed);
  }
  return slot.id;
}

void set_this_thread_name(std::string name) {
  const ThreadId id = this_thread_id();
  std::scoped_lock lock(g_names_mu);
  g_names[id] = std::move(name);
}

std::string this_thread_name() {
  const ThreadId id = this_thread_id();
  {
    std::scoped_lock lock(g_names_mu);
    auto it = g_names.find(id);
    if (it != g_names.end()) return it->second;
  }
  return "T" + std::to_string(id);
}

std::string thread_name(ThreadId id) {
  std::scoped_lock lock(g_names_mu);
  auto it = g_names.find(id);
  return it == g_names.end() ? std::string() : it->second;
}

ThreadId thread_count() { return g_next_id.load(std::memory_order_relaxed); }

namespace {
std::atomic<int> g_parallel_regions{0};
}  // namespace

bool reset_thread_epoch() {
  if (g_parallel_regions.load(std::memory_order_acquire) > 0) return false;
  std::scoped_lock lock(g_names_mu);
  g_names.clear();
  g_next_id.store(0, std::memory_order_relaxed);
  g_epoch.fetch_add(1, std::memory_order_acq_rel);
  return true;
}

ParallelRegion::ParallelRegion() {
  g_parallel_regions.fetch_add(1, std::memory_order_acq_rel);
}

ParallelRegion::~ParallelRegion() {
  g_parallel_regions.fetch_sub(1, std::memory_order_acq_rel);
}

bool ParallelRegion::active() {
  return g_parallel_regions.load(std::memory_order_acquire) > 0;
}

}  // namespace cbp::rt
