// Thread-bound execution context, inheritable across thread creation.
//
// The trigger engine became instantiable (core/engine.h): a harness
// worker can own a private Engine and run one trial against it while
// other workers run trials against theirs.  The binding "this thread's
// triggers go to engine E" is a thread-local pointer — but the replicas
// under test spawn their own worker threads with plain std::thread,
// which does not propagate thread-locals.  rt::Thread is a drop-in
// std::thread replacement that captures the creator's bound context and
// installs it in the child before the body runs, so an entire trial's
// thread tree shares one engine without the replica code knowing
// engines exist.
//
// The same propagation carries the bound ClockSource (runtime/vclock.h).
// Under a virtual clock the child's scheduler slot is registered *here,
// on the creating thread* — spawning is a deterministic event in the
// serialized trial, so the ready-queue order of new threads is fixed by
// program order, not by which OS thread happens to start first.  join()
// is likewise clock-aware: the joiner parks on the child's exit signal
// through the clock (releasing the run grant) and only then performs
// the real join, which by that point cannot block the trial.
//
// The context is an opaque void* at this layer (runtime sits below
// core); core/engine.h owns the only cast.
#pragma once

#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "runtime/vclock.h"

namespace cbp::rt {

namespace internal {
inline thread_local void* t_bound_context = nullptr;
}  // namespace internal

/// Context bound to the calling thread (null = none; users fall back to
/// their process-wide default).
inline void* bound_context() noexcept { return internal::t_bound_context; }

/// Binds `context` to the calling thread.  Prefer ScopedContext.
inline void bind_context(void* context) noexcept {
  internal::t_bound_context = context;
}

/// RAII binding: installs `context` for the calling thread and restores
/// the previous binding on destruction.
class ScopedContext {
 public:
  explicit ScopedContext(void* context) : previous_(bound_context()) {
    bind_context(context);
  }
  ~ScopedContext() { bind_context(previous_); }
  ScopedContext(const ScopedContext&) = delete;
  ScopedContext& operator=(const ScopedContext&) = delete;

 private:
  void* previous_;
};

/// std::thread drop-in whose body runs under the creator's bound
/// context and clock.  Replicas spawn their internal threads through
/// this so a trial bound to a private engine (and, under
/// --clock=virtual, a private clock) stays on them throughout.
class Thread {
 public:
  Thread() noexcept = default;

  template <class F, class... Args>
  explicit Thread(F&& f, Args&&... args) {
    ClockSource* clock = bound_clock();
    VirtualClock::ThreadSlot* slot = nullptr;
    if (clock != nullptr && clock->mode() == ClockMode::kVirtual) {
      // Register on the creating thread: program order fixes the slot's
      // position in the ready queue before the OS thread even exists.
      slot = static_cast<VirtualClock*>(clock)->register_thread();
      exit_ = std::make_shared<ExitSignal>();
    }
    impl_ = std::thread(
        [context = bound_context(), clock, slot, exit = exit_,
         fn = std::bind_front(std::forward<F>(f),
                              std::forward<Args>(args)...)]() mutable {
          ScopedContext scope(context);
          AdoptedClock adopted(clock, slot);
          std::move(fn)();
          if (exit) {
            // Signal completion while still attached, so a joiner
            // parked through the clock wakes before we give up the
            // grant (AdoptedClock detaches on scope exit, just after).
            {
              std::scoped_lock lock(exit->mu);
              exit->done = true;
            }
            clock_notify_all(exit->cv);
          }
        });
  }

  Thread(Thread&&) noexcept = default;
  Thread& operator=(Thread&&) = default;
  Thread(const Thread&) = delete;
  Thread& operator=(const Thread&) = delete;

  void join() {
    if (exit_) {
      // Park virtually until the child has signalled; the real join
      // below then only waits out the child's OS teardown, during
      // which it touches nothing the clock schedules.
      std::unique_lock lock(exit_->mu);
      clock_wait(exit_->cv, lock, [&] { return exit_->done; });
    }
    impl_.join();
  }
  void detach() { impl_.detach(); }
  [[nodiscard]] bool joinable() const noexcept { return impl_.joinable(); }
  [[nodiscard]] std::thread::id get_id() const noexcept {
    return impl_.get_id();
  }
  void swap(Thread& other) noexcept {
    impl_.swap(other.impl_);
    exit_.swap(other.exit_);
  }

 private:
  struct ExitSignal {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
  };

  std::thread impl_;
  std::shared_ptr<ExitSignal> exit_;
};

}  // namespace cbp::rt
