// Thread-bound execution context, inheritable across thread creation.
//
// The trigger engine became instantiable (core/engine.h): a harness
// worker can own a private Engine and run one trial against it while
// other workers run trials against theirs.  The binding "this thread's
// triggers go to engine E" is a thread-local pointer — but the replicas
// under test spawn their own worker threads with plain std::thread,
// which does not propagate thread-locals.  rt::Thread is a drop-in
// std::thread replacement that captures the creator's bound context and
// installs it in the child before the body runs, so an entire trial's
// thread tree shares one engine without the replica code knowing
// engines exist.
//
// The context is an opaque void* at this layer (runtime sits below
// core); core/engine.h owns the only cast.
#pragma once

#include <functional>
#include <thread>
#include <utility>

namespace cbp::rt {

namespace internal {
inline thread_local void* t_bound_context = nullptr;
}  // namespace internal

/// Context bound to the calling thread (null = none; users fall back to
/// their process-wide default).
inline void* bound_context() noexcept { return internal::t_bound_context; }

/// Binds `context` to the calling thread.  Prefer ScopedContext.
inline void bind_context(void* context) noexcept {
  internal::t_bound_context = context;
}

/// RAII binding: installs `context` for the calling thread and restores
/// the previous binding on destruction.
class ScopedContext {
 public:
  explicit ScopedContext(void* context) : previous_(bound_context()) {
    bind_context(context);
  }
  ~ScopedContext() { bind_context(previous_); }
  ScopedContext(const ScopedContext&) = delete;
  ScopedContext& operator=(const ScopedContext&) = delete;

 private:
  void* previous_;
};

/// std::thread drop-in whose body runs under the creator's bound
/// context.  Replicas spawn their internal threads through this so a
/// trial bound to a private engine stays on that engine throughout.
class Thread {
 public:
  Thread() noexcept = default;

  template <class F, class... Args>
  explicit Thread(F&& f, Args&&... args)
      : impl_([context = bound_context(),
               fn = std::bind_front(std::forward<F>(f),
                                    std::forward<Args>(args)...)]() mutable {
          ScopedContext scope(context);
          std::move(fn)();
        }) {}

  Thread(Thread&&) noexcept = default;
  Thread& operator=(Thread&&) = default;
  Thread(const Thread&) = delete;
  Thread& operator=(const Thread&) = delete;

  void join() { impl_.join(); }
  void detach() { impl_.detach(); }
  [[nodiscard]] bool joinable() const noexcept { return impl_.joinable(); }
  [[nodiscard]] std::thread::id get_id() const noexcept {
    return impl_.get_id();
  }
  void swap(Thread& other) noexcept { impl_.swap(other.impl_); }

 private:
  std::thread impl_;
};

}  // namespace cbp::rt
