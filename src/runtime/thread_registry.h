// Stable small integer ids and human-readable names for threads.
//
// std::thread::id is opaque; detectors, vector clocks and the trigger
// engine want dense small ids.  Ids are assigned on first use per thread
// and are never reused within a process epoch; `reset_epoch()` restarts
// numbering for harnesses that run many experiments in one process.
#pragma once

#include <cstdint>
#include <string>

namespace cbp::rt {

using ThreadId = std::uint32_t;

/// Dense id of the calling thread (assigned on first call).
ThreadId this_thread_id();

/// Attaches a debugging name to the calling thread.
void set_this_thread_name(std::string name);

/// Name of the calling thread ("T<k>" if never set).
std::string this_thread_name();

/// Name for an arbitrary thread id (empty if unknown).
std::string thread_name(ThreadId id);

/// Number of thread ids handed out so far in this epoch.
ThreadId thread_count();

/// Restarts id numbering.  Only safe between experiments, when no worker
/// thread that received an id in the old epoch is still running.
void reset_thread_epoch();

}  // namespace cbp::rt
