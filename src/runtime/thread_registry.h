// Stable small integer ids and human-readable names for threads.
//
// std::thread::id is opaque; detectors, vector clocks and the trigger
// engine want dense small ids.  Ids are assigned on first use per thread
// and are never reused within a process epoch; `reset_epoch()` restarts
// numbering for harnesses that run many experiments in one process.
#pragma once

#include <cstdint>
#include <string>

namespace cbp::rt {

using ThreadId = std::uint32_t;

/// Dense id of the calling thread (assigned on first call).
ThreadId this_thread_id();

/// Attaches a debugging name to the calling thread.
void set_this_thread_name(std::string name);

/// Name of the calling thread ("T<k>" if never set).
std::string this_thread_name();

/// Name for an arbitrary thread id (empty if unknown).
std::string thread_name(ThreadId id);

/// Number of thread ids handed out so far in this epoch.
ThreadId thread_count();

/// Restarts id numbering.  Only safe between experiments, when no worker
/// thread that received an id in the old epoch is still running.  While
/// a ParallelRegion is active the call is a no-op (returns false): other
/// workers' trials are mid-flight and an epoch bump would let two live
/// threads share one id, cross-talking every id-keyed structure (slot
/// waiter sets, vector clocks, trace attribution).
bool reset_thread_epoch();

/// Marks a parallel experiment region (harness worker pools).  Ids keep
/// monotonically increasing across trials inside a region; only the
/// region's end makes epoch resets legal again.
class ParallelRegion {
 public:
  ParallelRegion();
  ~ParallelRegion();
  ParallelRegion(const ParallelRegion&) = delete;
  ParallelRegion& operator=(const ParallelRegion&) = delete;

  /// True while any ParallelRegion object is alive (any thread).
  static bool active();
};

}  // namespace cbp::rt
