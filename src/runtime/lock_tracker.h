// Per-thread held-lock tracking with type tags.
//
// Supports the paper's §6.3 `isLockTypeHeld(type)` local-predicate
// refinement (Swing/RepaintManager case): a breakpoint only postpones
// when the current thread already holds a lock of a given "type"
// (class/tag).  Any lock that wants to participate registers its
// acquisition through these hooks; `instrument::TrackedMutex` does so
// automatically.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace cbp::rt {

struct HeldLock {
  const void* lock;      // identity of the lock object
  std::string_view tag;  // "type" of the lock (owner must outlive the hold)
};

/// Records that the calling thread acquired `lock` (tagged `tag`).
void note_lock_acquired(const void* lock, std::string_view tag);

/// Records that the calling thread released `lock` (innermost match).
void note_lock_released(const void* lock);

/// True if the calling thread currently holds `lock`.
bool is_lock_held(const void* lock);

/// True if the calling thread holds any lock tagged `tag`
/// (the paper's isLockTypeHeld(type)).
bool is_lock_type_held(std::string_view tag);

/// Number of locks the calling thread currently holds.
std::size_t held_lock_count();

/// Snapshot of the calling thread's held-lock stack, outermost first.
std::vector<HeldLock> held_locks();

/// RAII convenience for code that manages raw locks itself.
class ScopedLockNote {
 public:
  ScopedLockNote(const void* lock, std::string_view tag) : lock_(lock) {
    note_lock_acquired(lock, tag);
  }
  ~ScopedLockNote() { note_lock_released(lock_); }
  ScopedLockNote(const ScopedLockNote&) = delete;
  ScopedLockNote& operator=(const ScopedLockNote&) = delete;

 private:
  const void* lock_;
};

}  // namespace cbp::rt
