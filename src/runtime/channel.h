// Bounded multi-producer/multi-consumer channel with close semantics.
//
// Several replicas (crawler, compressor, servers) are producer/consumer
// systems; this channel is their correctly-synchronized backbone so the
// *seeded* bug in each replica is the only concurrency defect present.
//
// Waits/notifies route through the clock helpers (runtime/vclock.h): a
// trial under a virtual clock schedules blocked senders/receivers
// instead of parking them in the kernel; unclocked use is the plain
// condition-variable protocol.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "runtime/vclock.h"

namespace cbp::rt {

template <class T>
class Channel {
 public:
  explicit Channel(std::size_t capacity) : capacity_(capacity) {}

  /// Blocks until space is available; returns false if the channel closed.
  bool send(T value) {
    std::unique_lock lock(mu_);
    clock_wait(not_full_, lock,
               [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(value));
    clock_notify_one(not_empty_);
    return true;
  }

  /// Non-blocking send; returns false when full or closed.
  bool try_send(T value) {
    std::scoped_lock lock(mu_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(value));
    clock_notify_one(not_empty_);
    return true;
  }

  /// Blocks until an item arrives; nullopt when closed and drained.
  std::optional<T> receive() {
    std::unique_lock lock(mu_);
    clock_wait(not_empty_, lock,
               [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    clock_notify_one(not_full_);
    return value;
  }

  /// Timed receive; nullopt on timeout or on closed-and-drained.
  template <class Rep, class Period>
  std::optional<T> receive_for(std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock lock(mu_);
    if (!clock_wait_for(not_empty_, lock, timeout,
                        [this] { return closed_ || !items_.empty(); })) {
      return std::nullopt;
    }
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    clock_notify_one(not_full_);
    return value;
  }

  /// Closes the channel: senders fail, receivers drain then get nullopt.
  void close() {
    std::scoped_lock lock(mu_);
    closed_ = true;
    clock_notify_all(not_empty_);
    clock_notify_all(not_full_);
  }

  [[nodiscard]] bool closed() const {
    std::scoped_lock lock(mu_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::scoped_lock lock(mu_);
    return items_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;   // guarded by mu_
  std::size_t capacity_;  // immutable
  bool closed_ = false;   // guarded by mu_
};

}  // namespace cbp::rt
