// Timing utilities: monotonic stopwatch and a process-wide time scale.
//
// The paper quotes pause times of 100 ms .. 10 s.  To keep the full
// evaluation runnable in minutes we run every wait through a global
// `time_scale()` knob; benches report both the nominal (paper) value and
// the scaled value actually used.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace cbp::rt {

using Clock = std::chrono::steady_clock;
using Duration = Clock::duration;
using TimePoint = Clock::time_point;

/// Process-wide multiplier applied to nominal pause/timeout durations.
/// 1.0 means "use the paper's nominal values verbatim".
class TimeScale {
 public:
  static void set(double scale) noexcept {
    scale_.store(scale, std::memory_order_relaxed);
  }
  static double get() noexcept {
    return scale_.load(std::memory_order_relaxed);
  }

  /// Applies the current scale to a nominal duration.
  static Duration apply(Duration nominal) noexcept {
    const double s = get();
    const auto ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(nominal).count();
    const auto scaled = static_cast<std::int64_t>(static_cast<double>(ns) * s);
    return std::chrono::nanoseconds(scaled);
  }

 private:
  static inline std::atomic<double> scale_{1.0};
};

/// RAII override of the global time scale (for tests and benches).
class ScopedTimeScale {
 public:
  explicit ScopedTimeScale(double scale) : previous_(TimeScale::get()) {
    TimeScale::set(scale);
  }
  ~ScopedTimeScale() { TimeScale::set(previous_); }
  ScopedTimeScale(const ScopedTimeScale&) = delete;
  ScopedTimeScale& operator=(const ScopedTimeScale&) = delete;

 private:
  double previous_;
};

/// Monotonic stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  [[nodiscard]] Duration elapsed() const { return Clock::now() - start_; }

  [[nodiscard]] double elapsed_seconds() const {
    return std::chrono::duration<double>(elapsed()).count();
  }

  [[nodiscard]] std::int64_t elapsed_us() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(elapsed())
        .count();
  }

 private:
  TimePoint start_;
};

}  // namespace cbp::rt
