// Timing utilities: monotonic stopwatch and a process-wide time scale.
//
// The paper quotes pause times of 100 ms .. 10 s.  To keep the full
// evaluation runnable in minutes we run every wait through a global
// `time_scale()` knob; benches report both the nominal (paper) value and
// the scaled value actually used.
//
// Since the virtual-time work (DESIGN.md §5g) the scale is one of three
// ClockMode policies: `real` (scale pinned at 1.0), `scaled` (this
// knob), and `virtual` (a per-trial discrete-event clock that makes
// waits free — see runtime/vclock.h).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace cbp::rt {

using Clock = std::chrono::steady_clock;
using Duration = Clock::duration;
using TimePoint = Clock::time_point;

/// How nominal durations become waits; carried in apps::RunOptions and
/// realized by a ClockSource (runtime/vclock.h).
enum class ClockMode : std::uint8_t {
  kReal,     ///< nominal durations verbatim (kernel waits, scale 1.0)
  kScaled,   ///< nominal * TimeScale (kernel waits) — historical default
  kVirtual,  ///< discrete-event virtual time (waits are free)
};

/// Process-wide multiplier applied to nominal pause/timeout durations.
/// 1.0 means "use the paper's nominal values verbatim".
class TimeScale {
 public:
  static void set(double scale) noexcept {
    scale_.store(scale, std::memory_order_relaxed);
  }
  static double get() noexcept {
    return scale_.load(std::memory_order_relaxed);
  }

  /// Applies `scale` to a nominal duration, with documented floors for
  /// the degenerate cases:
  ///   * scale <= 0 (or NaN) collapses to Duration::zero() — callers
  ///     skip the kernel wait instead of issuing one with an
  ///     implementation-defined non-positive timeout;
  ///   * a positive nominal whose scaled value would truncate below
  ///     1 ns is clamped to 1 ns, so "wait a little" never silently
  ///     becomes "don't wait at all" (a zero-duration kernel wait still
  ///     costs a syscall and loses the happens-later edge the caller
  ///     asked for).
  static Duration apply_scale(Duration nominal, double scale) noexcept {
    const auto ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(nominal).count();
    if (ns <= 0 || !(scale > 0.0)) return Duration::zero();
    const double scaled = static_cast<double>(ns) * scale;
    const auto floored =
        scaled < 1.0 ? std::int64_t{1} : static_cast<std::int64_t>(scaled);
    return std::chrono::nanoseconds(floored);
  }

  /// Applies the current global scale to a nominal duration.
  static Duration apply(Duration nominal) noexcept {
    return apply_scale(nominal, get());
  }

 private:
  static inline std::atomic<double> scale_{1.0};
};

/// RAII override of the global time scale (for tests and benches).
class ScopedTimeScale {
 public:
  explicit ScopedTimeScale(double scale) : previous_(TimeScale::get()) {
    TimeScale::set(scale);
  }
  ~ScopedTimeScale() { TimeScale::set(previous_); }
  ScopedTimeScale(const ScopedTimeScale&) = delete;
  ScopedTimeScale& operator=(const ScopedTimeScale&) = delete;

 private:
  double previous_;
};

/// The active clock's current timestamp: the thread-bound ClockSource
/// when one is bound (runtime/vclock.h), Clock::now() otherwise.
/// Declared here so Stopwatch (and anyone holding only clock.h) can
/// follow the active clock; defined in vclock.cc.
[[nodiscard]] TimePoint clock_now();

/// Monotonic stopwatch over the *active* clock: inside a virtual-clock
/// binding it measures virtual time (replica runtimes, engine wait
/// accounting); outside one it is the plain steady-clock stopwatch the
/// benches use for wall-clock.
class Stopwatch {
 public:
  Stopwatch() : start_(clock_now()) {}

  void restart() { start_ = clock_now(); }

  [[nodiscard]] Duration elapsed() const { return clock_now() - start_; }

  [[nodiscard]] double elapsed_seconds() const {
    return std::chrono::duration<double>(elapsed()).count();
  }

  [[nodiscard]] std::int64_t elapsed_us() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(elapsed())
        .count();
  }

 private:
  TimePoint start_;
};

}  // namespace cbp::rt
