// Deterministic, seedable random number generation (SplitMix64 core).
//
// Every stochastic component in the repository (noise injectors, workload
// generators, the Monte-Carlo schedule model) draws from one of these so
// experiments are reproducible given a seed.
#pragma once

#include <cstdint>
#include <limits>

namespace cbp::rt {

/// SplitMix64: tiny, fast, and statistically solid for simulation use.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). Requires bound > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    // Multiplicative rejection-free mapping (Lemire); slight bias is
    // irrelevant at simulation scales but we debias for small bounds.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool next_bool(double p) { return next_double() < p; }

  /// Derives an independent child generator (for per-thread streams).
  Rng split() { return Rng(next_u64() ^ 0xa3ec647659359acdULL); }

  // UniformRandomBitGenerator interface so <algorithm> shuffles work.
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }
  result_type operator()() { return next_u64(); }

 private:
  std::uint64_t state_;
};

}  // namespace cbp::rt
