// Simulated failure artifacts.
//
// The paper's C/C++ bugs end in real crashes (null dereference in pbzip2,
// buffer overflow in httpd, null dereference in MySQL 4.0.19).  Our
// replicas detect the corrupted state that *would* crash the original and
// throw `SimulatedCrash` instead, so the harness can count the artifact,
// measure mean-time-to-error, and keep the process alive.  This
// substitution is recorded in DESIGN.md.
#pragma once

#include <stdexcept>
#include <string>

namespace cbp::rt {

/// Thrown by a benchmark replica at the exact point the original program
/// would have crashed (e.g. dereferencing a null block pointer).
class SimulatedCrash : public std::runtime_error {
 public:
  explicit SimulatedCrash(const std::string& what_arg)
      : std::runtime_error(what_arg) {}
};

/// Thrown by a replica when it detects that progress has stopped — a
/// deadlock (lock wait exceeded the stall threshold) or a missed
/// notification (condition wait exceeded the stall threshold).  The
/// original programs hang forever; we detect-and-abort "when the
/// deadlock conditions have been met", matching how the paper timestamps
/// stalls, while keeping the harness able to re-run.
class StallError : public std::runtime_error {
 public:
  explicit StallError(const std::string& what_arg)
      : std::runtime_error(what_arg) {}
};

/// Uniform classification of what one run of a buggy replica produced.
/// Mirrors the "Error" column of Tables 1 and 2.
enum class Artifact {
  kNone,            // run completed cleanly
  kRaceObserved,    // racy state actually overlapped (both sides present)
  kWrongResult,     // computation produced a wrong value ("test fail")
  kException,       // replica threw a (non-crash) exception
  kStall,           // deadlock or missed notification: progress stopped
  kCrash,           // SimulatedCrash was thrown
  kLogCorruption,   // interleaved/garbled log line
  kLogOmission,     // an event that must be logged was dropped
  kLogDisorder,     // log records committed out of causal order
};

/// Human-readable artifact label (matches the paper's vocabulary).
inline const char* artifact_name(Artifact a) {
  switch (a) {
    case Artifact::kNone: return "none";
    case Artifact::kRaceObserved: return "race";
    case Artifact::kWrongResult: return "test fail";
    case Artifact::kException: return "exception";
    case Artifact::kStall: return "stall";
    case Artifact::kCrash: return "crash";
    case Artifact::kLogCorruption: return "log corruption";
    case Artifact::kLogOmission: return "log omission";
    case Artifact::kLogDisorder: return "log disorder";
  }
  return "unknown";
}

}  // namespace cbp::rt
