// Static Eraser-style lockset pass.
//
// For every shared variable in the unit, every pair of access sites with
// at least one write and *disjoint* statically-enclosing locksets is a
// candidate ConflictTrigger pair: no common lock means nothing in the
// program text orders the two accesses, which is precisely the (l1, l2)
// shape Methodology I mines from dynamic race reports — obtained here
// with zero executions.
//
// The same machinery emits lock-contention candidates for every mutex
// that guards a condition wait: each pair of acquisition sites of such a
// mutex is a potential Methodology-II contention pair (the §5 log4j
// report shape — the class that surfaces missed-notification stalls).
#pragma once

#include <vector>

#include "sa/model.h"

namespace cbp::sa {

/// Conflict (data-race) candidates for one unit.
std::vector<Candidate> lockset_pass(const UnitModel& model);

/// Contention candidates: acquisition-site pairs of condvar-guarding
/// mutexes.
std::vector<Candidate> contention_pass(const UnitModel& model);

}  // namespace cbp::sa
