#include "sa/extractor.h"

#include <algorithm>
#include <set>

namespace cbp::sa {
namespace {

/// One lock active in a brace scope.  `alias` is the TrackedLock
/// variable name for RAII acquisitions ("" for manual lock() calls);
/// `token` identifies the acquisition instance (atomicity pass).
struct ScopeLock {
  std::string mutex;
  std::string alias;
  int token = 0;
};

bool is_wait_method(const std::string& m) {
  return m == "wait" || m == "wait_for" || m == "wait_or_stall" ||
         m == "wait_notified_or_stall";
}

const char* trigger_kind(const std::string& ident) {
  if (ident == "ConflictTrigger" || ident == "CBP_CONFLICT") return "conflict";
  if (ident == "DeadlockTrigger" || ident == "CBP_DEADLOCK") return "deadlock";
  if (ident == "OrderTrigger" || ident == "CBP_ORDER") return "order";
  if (ident == "AtomicityTrigger") return "atomicity";
  return nullptr;
}

/// Keywords that look like `ident (` but never name a function.
bool is_control_keyword(const std::string& ident) {
  static const std::set<std::string> kKeywords{
      "if",     "for",    "while",  "switch",  "catch",   "return",
      "sizeof", "throw",  "new",    "delete",  "alignof", "decltype",
      "static_assert",    "assert", "co_return", "co_await", "co_yield"};
  return kKeywords.count(ident) != 0;
}

/// Specifier tokens allowed between a function's `)` and its body `{`.
bool is_function_specifier(const std::string& ident) {
  return ident == "const" || ident == "noexcept" || ident == "override" ||
         ident == "final" || ident == "mutable" || ident == "volatile" ||
         ident == "try";
}

class FileExtractor {
 public:
  FileExtractor(const std::string& path, const std::vector<Token>& tokens,
                bool decls_only, UnitModel& model)
      : path_(path), t_(tokens), decls_only_(decls_only), m_(model) {
    scopes_.emplace_back();  // file-level scope
  }

  void run() {
    for (std::size_t i = 0; i < t_.size();) {
      const Token& tk = t_[i];
      if (tk.is_punct("{")) {
        scopes_.emplace_back();
        if (i == pending_body_) {
          open_functions_.push_back(
              OpenFunction{pending_function_, scopes_.size()});
        }
        ++i;
      } else if (tk.is_punct("}")) {
        if (!open_functions_.empty() &&
            open_functions_.back().depth == scopes_.size()) {
          open_functions_.pop_back();
        }
        if (scopes_.size() > 1) scopes_.pop_back();
        ++i;
      } else if (tk.kind == TokKind::kIdent) {
        i = handle_ident(i);
      } else if ((tk.is_punct(".") || tk.is_punct("->")) && i + 2 < t_.size() &&
                 t_[i + 1].kind == TokKind::kIdent &&
                 t_[i + 2].is_punct("(")) {
        i = handle_method_call(i);
      } else {
        ++i;
      }
    }
  }

 private:
  /// A function whose body brace scope is currently open.
  struct OpenFunction {
    std::string name;
    std::size_t depth;  ///< scopes_.size() while the body is open
  };

  [[nodiscard]] SiteRef site(std::uint32_t line) const {
    return SiteRef{path_, line};
  }

  [[nodiscard]] const std::string& current_function() const {
    static const std::string kNone;
    return open_functions_.empty() ? kNone : open_functions_.back().name;
  }

  /// Index just past the '>' matching the '<' at `i`, or i + 1 if the
  /// template argument list never closes (malformed / not a template).
  [[nodiscard]] std::size_t skip_template_args(std::size_t i) const {
    int depth = 0;
    for (std::size_t j = i; j < t_.size() && j < i + 128; ++j) {
      if (t_[j].is_punct("<")) ++depth;
      if (t_[j].is_punct(">")) {
        if (--depth == 0) return j + 1;
      }
      if (t_[j].is_punct(";") || t_[j].is_punct("{")) break;
    }
    return i + 1;
  }

  /// Index of the ')' matching the '(' at `i` (or end of stream).
  [[nodiscard]] std::size_t match_paren(std::size_t i) const {
    int depth = 0;
    for (std::size_t j = i; j < t_.size(); ++j) {
      if (t_[j].is_punct("(")) ++depth;
      if (t_[j].is_punct(")")) {
        if (--depth == 0) return j;
      }
    }
    return t_.size();
  }

  /// Index of the token past a balanced '(...)' or '{...}' group whose
  /// opener is at `i` (used to skip constructor-initializer arguments).
  [[nodiscard]] std::size_t skip_group(std::size_t i) const {
    const bool paren = t_[i].is_punct("(");
    const char* open = paren ? "(" : "{";
    const char* close = paren ? ")" : "}";
    int depth = 0;
    for (std::size_t j = i; j < t_.size(); ++j) {
      if (t_[j].is_punct(open)) ++depth;
      if (t_[j].is_punct(close)) {
        if (--depth == 0) return j + 1;
      }
    }
    return t_.size();
  }

  /// Last identifier in tokens [begin, end): the trailing component of a
  /// receiver chain like `this->mu_` or `obj.inner.lock_`.
  [[nodiscard]] std::string last_ident(std::size_t begin,
                                       std::size_t end) const {
    std::string name;
    for (std::size_t j = begin; j < end && j < t_.size(); ++j) {
      if (t_[j].kind == TokKind::kIdent) name = t_[j].text;
    }
    return name;
  }

  [[nodiscard]] std::vector<std::string> lockset() const {
    std::vector<std::string> held;
    for (const auto& level : scopes_) {
      for (const ScopeLock& lock : level) held.push_back(lock.mutex);
    }
    std::sort(held.begin(), held.end());
    held.erase(std::unique(held.begin(), held.end()), held.end());
    return held;
  }

  /// Acquisition instances active at the current point (atomicity pass).
  [[nodiscard]] std::vector<HeldLock> holds() const {
    std::vector<HeldLock> out;
    for (const auto& level : scopes_) {
      for (const ScopeLock& lock : level) {
        out.push_back(HeldLock{lock.mutex, lock.token});
      }
    }
    return out;
  }

  [[nodiscard]] bool is_var(const std::string& name) const {
    for (const VarDecl& v : m_.vars) {
      if (v.name == name) return true;
    }
    return false;
  }

  void ensure_mutex(const std::string& name, std::uint32_t line) {
    if (m_.find_mutex(name) == nullptr) {
      m_.mutexes.push_back(MutexDecl{name, "", site(line)});
    }
  }

  void record_acquire(const std::string& mutex, std::uint32_t line,
                      bool blocking) {
    std::vector<std::string> held = lockset();
    held.erase(std::remove(held.begin(), held.end(), mutex), held.end());
    m_.acquires.push_back(Acquire{mutex, site(line), blocking,
                                  std::move(held), current_function()});
  }

  /// First argument of the call whose '(' is at `open`: last identifier
  /// before the first top-level ',' (empty for zero-argument calls).
  [[nodiscard]] std::string first_arg_ident(std::size_t open) const {
    const std::size_t close = match_paren(open);
    int depth = 0;
    std::size_t end = close;
    for (std::size_t j = open; j < close; ++j) {
      if (t_[j].is_punct("(") || t_[j].is_punct("{")) ++depth;
      if (t_[j].is_punct(")") || t_[j].is_punct("}")) --depth;
      if (depth == 1 && t_[j].is_punct(",")) {
        end = j;
        break;
      }
    }
    return last_ident(open + 1, end);
  }

  /// First argument rendered as an annotation name: a string literal's
  /// text, else the trailing identifier (e.g. kRace1).
  [[nodiscard]] std::string first_arg_name(std::size_t open) const {
    const std::size_t close = match_paren(open);
    for (std::size_t j = open + 1; j < close; ++j) {
      if (t_[j].kind == TokKind::kString) return t_[j].text;
      if (t_[j].is_punct(",")) break;
    }
    return first_arg_ident(open);
  }

  std::size_t handle_ident(std::size_t i) {
    const std::string& ident = t_[i].text;
    if (ident == "SharedVar") return handle_var_decl(i);
    if (ident == "TrackedMutex") return handle_mutex_decl(i);
    if (decls_only_) {
      maybe_string_const(i);
      maybe_function(i);
      return i + 1;
    }
    if (ident == "TrackedLock") return handle_tracked_lock(i);
    if (const char* kind = trigger_kind(ident)) {
      return handle_annotation(i, kind);
    }
    maybe_function(i);
    return i + 1;
  }

  /// `kName = "literal"` — a string constant (annotation names resolve
  /// through these to the runtime breakpoint name they designate).
  /// Requires a single '=' (not `==`) and a terminating ';'.
  void maybe_string_const(std::size_t i) {
    if (i + 3 >= t_.size()) return;
    if (!t_[i + 1].is_punct("=") || t_[i + 2].kind != TokKind::kString ||
        !t_[i + 3].is_punct(";")) {
      return;
    }
    if (i > 0 && t_[i - 1].is_punct("=")) return;  // `a == "x"` comparison
    m_.consts.emplace(t_[i].text, t_[i + 2].text);
  }

  /// Function-definition and call-site detection at `ident (`.
  ///
  /// Definition: the matched ')' is followed — possibly across cv/ref
  /// qualifiers, noexcept(...), override/final, a trailing return type,
  /// or a constructor initializer list — by a body '{'.  The body brace
  /// index is remembered so run() binds the right scope (constructor
  /// member initializers may open earlier braces).
  ///
  /// Call: everything else, provided the previous token cannot start a
  /// declaration (a type name, '*', '&', '~') — that filter keeps
  /// prototypes like `void put(int);` out of the call graph.
  void maybe_function(std::size_t i) {
    const std::string& ident = t_[i].text;
    if (is_control_keyword(ident)) return;
    if (i + 1 >= t_.size() || !t_[i + 1].is_punct("(")) return;
    if (i > 0 && (t_[i - 1].is_punct(".") || t_[i - 1].is_punct("->") ||
                  t_[i - 1].is_punct("~"))) {
      return;  // method calls are handled at the '.'; skip destructors
    }
    const std::size_t close = match_paren(i + 1);
    if (close >= t_.size()) return;

    const std::size_t body = find_body_brace(close + 1);
    if (body != 0) {
      if (decls_only_) {
        if (!m_.has_function(ident)) {
          m_.functions.push_back(FunctionDecl{ident, site(t_[i].line)});
        }
      } else {
        pending_function_ = ident;
        pending_body_ = body;
      }
      return;
    }

    if (decls_only_) return;
    // Call site: reject declaration shapes (preceded by a type).
    if (i > 0) {
      const Token& prev = t_[i - 1];
      if (prev.kind == TokKind::kIdent && !is_control_keyword(prev.text)) {
        return;
      }
      if (prev.is_punct("*") || prev.is_punct("&") || prev.is_punct(">") ||
          prev.is_punct("::")) {
        return;
      }
    }
    m_.calls.push_back(
        CallSite{current_function(), ident, site(t_[i].line), lockset()});
  }

  /// Scans forward from just past a parameter list's ')': returns the
  /// token index of the function body's '{', or 0 when the tokens do not
  /// form a definition.  Bounded so malformed input cannot spin.
  [[nodiscard]] std::size_t find_body_brace(std::size_t j) const {
    for (std::size_t steps = 0; j < t_.size() && steps < 256; ++steps) {
      const Token& tk = t_[j];
      if (tk.is_punct("{")) return j;
      if (tk.is_punct(";")) return 0;
      if (tk.kind == TokKind::kIdent && is_function_specifier(tk.text)) {
        if (tk.text == "noexcept" && j + 1 < t_.size() &&
            t_[j + 1].is_punct("(")) {
          j = match_paren(j + 1) + 1;
        } else {
          ++j;
        }
        continue;
      }
      if (tk.is_punct("&")) {  // ref-qualifier
        ++j;
        continue;
      }
      if (tk.is_punct("->")) {  // trailing return type
        ++j;
        while (j < t_.size() && (t_[j].kind == TokKind::kIdent ||
                                 t_[j].is_punct("::") || t_[j].is_punct("*") ||
                                 t_[j].is_punct("&"))) {
          if (t_[j].kind == TokKind::kIdent && j + 1 < t_.size() &&
              t_[j + 1].is_punct("<")) {
            ++j;
            j = skip_template_args(j);
          } else {
            ++j;
          }
        }
        continue;
      }
      if (tk.is_punct(":")) {  // constructor initializer list
        ++j;
        while (j < t_.size()) {
          // `member(args)` or `member{args}`, comma-separated.
          while (j < t_.size() && (t_[j].kind == TokKind::kIdent ||
                                   t_[j].is_punct("::"))) {
            ++j;
          }
          if (j < t_.size() && t_[j].is_punct("<")) j = skip_template_args(j);
          if (j >= t_.size() ||
              !(t_[j].is_punct("(") || t_[j].is_punct("{"))) {
            return 0;
          }
          j = skip_group(j);
          if (j < t_.size() && t_[j].is_punct(",")) {
            ++j;
            continue;
          }
          break;
        }
        continue;
      }
      return 0;
    }
    return 0;
  }

  /// `SharedVar<T> [&*] name` — member, local, or reference parameter.
  std::size_t handle_var_decl(std::size_t i) {
    std::size_t j = i + 1;
    if (j < t_.size() && t_[j].is_punct("<")) j = skip_template_args(j);
    while (j < t_.size() && (t_[j].is_punct("&") || t_[j].is_punct("*"))) ++j;
    if (j < t_.size() && t_[j].kind == TokKind::kIdent) {
      if (decls_only_ && !is_var(t_[j].text)) {
        m_.vars.push_back(VarDecl{t_[j].text, site(t_[j].line)});
      }
      return j + 1;
    }
    return i + 1;
  }

  /// `TrackedMutex [&] name[{"tag"}|("tag")]`.
  std::size_t handle_mutex_decl(std::size_t i) {
    std::size_t j = i + 1;
    while (j < t_.size() && (t_[j].is_punct("&") || t_[j].is_punct("*"))) ++j;
    if (j >= t_.size() || t_[j].kind != TokKind::kIdent) return i + 1;
    const std::string name = t_[j].text;
    std::string tag;
    std::size_t next = j + 1;
    if (next < t_.size() &&
        (t_[next].is_punct("{") || t_[next].is_punct("("))) {
      // Scan the initializer for a tag string; stop at the ';'.
      for (std::size_t k = next + 1; k < t_.size() && k < next + 16; ++k) {
        if (t_[k].is_punct(";")) break;
        if (t_[k].kind == TokKind::kString) {
          tag = t_[k].text;
          break;
        }
      }
    }
    if (decls_only_) {
      if (m_.find_mutex(name) == nullptr) {
        m_.mutexes.push_back(MutexDecl{name, tag, site(t_[j].line)});
      } else if (!tag.empty()) {
        for (MutexDecl& m : m_.mutexes) {
          if (m.name == name && m.tag.empty()) m.tag = tag;
        }
      }
    }
    return j + 1;
  }

  /// `TrackedLock alias(mu)` — RAII acquisition bound to this scope.
  /// `TrackedLock(mu)` (temporary) acquires and releases immediately.
  std::size_t handle_tracked_lock(std::size_t i) {
    std::size_t j = i + 1;
    std::string alias;
    if (j < t_.size() && t_[j].kind == TokKind::kIdent) {
      alias = t_[j].text;
      ++j;
    }
    if (j >= t_.size() || !t_[j].is_punct("(")) return i + 1;
    const std::size_t close = match_paren(j);
    const std::string mutex = last_ident(j + 1, close);
    if (mutex.empty()) return close + 1;
    ensure_mutex(mutex, t_[i].line);
    record_acquire(mutex, t_[i].line, /*blocking=*/true);
    if (!alias.empty()) {
      scopes_.back().push_back(ScopeLock{mutex, alias, next_token_++});
    }
    return close + 1;
  }

  /// `CBP_*(name, ...)` or `XxxTrigger trigger(name, ...)`.
  std::size_t handle_annotation(std::size_t i, const char* kind) {
    std::size_t j = i + 1;
    if (j < t_.size() && t_[j].kind == TokKind::kIdent) ++j;  // ctor var name
    if (j >= t_.size() || !t_[j].is_punct("(")) return i + 1;
    m_.annotations.push_back(
        Annotation{kind, first_arg_name(j), site(t_[i].line)});
    return j + 1;
  }

  std::size_t handle_method_call(std::size_t i) {
    const std::string& method = t_[i + 1].text;
    const std::size_t open = i + 2;
    // Receiver chain's trailing component must be a plain identifier.
    if (i == 0 || t_[i - 1].kind != TokKind::kIdent) return open + 1;
    const std::string& recv = t_[i - 1].text;
    const std::uint32_t line = t_[i + 1].line;

    if (decls_only_) return open + 1;

    if (method == "read" || method == "write" || method == "racy_update") {
      if (is_var(recv)) {
        if (method != "write") {
          m_.accesses.push_back(Access{recv, site(line), /*is_write=*/false,
                                       lockset(), holds(),
                                       current_function()});
        }
        if (method != "read") {
          m_.accesses.push_back(Access{recv, site(line), /*is_write=*/true,
                                       lockset(), holds(),
                                       current_function()});
        }
      }
    } else if (method == "lock" || method == "lock_or_stall" ||
               method == "try_lock") {
      // `.lock_or_stall` is unique to TrackedMutex, so it registers the
      // mutex even when undeclared; bare `.lock()`/`.try_lock()` only
      // count on declared TrackedMutexes (std types use them too).
      const bool known = m_.find_mutex(recv) != nullptr;
      if (method == "lock_or_stall" || known) {
        ensure_mutex(recv, line);
        record_acquire(recv, line, /*blocking=*/method != "try_lock");
        scopes_.back().push_back(ScopeLock{recv, "", next_token_++});
      }
    } else if (method == "unlock") {
      release(recv);
    } else if (is_wait_method(method)) {
      const std::string mutex = first_arg_ident(open);
      if (!mutex.empty() && m_.find_mutex(mutex) != nullptr) {
        m_.waits.push_back(Wait{recv, mutex, site(line)});
      }
    }
    return open + 1;
  }

  /// `x.unlock()`: x is either a TrackedLock alias (early release) or a
  /// mutex (manual release).  Removes the innermost matching entry.
  void release(const std::string& recv) {
    for (auto level = scopes_.rbegin(); level != scopes_.rend(); ++level) {
      for (auto it = level->rbegin(); it != level->rend(); ++it) {
        if (it->alias == recv || it->mutex == recv) {
          level->erase(std::next(it).base());
          return;
        }
      }
    }
  }

  const std::string& path_;
  const std::vector<Token>& t_;
  const bool decls_only_;
  UnitModel& m_;
  std::vector<std::vector<ScopeLock>> scopes_;
  std::vector<OpenFunction> open_functions_;
  std::string pending_function_;
  std::size_t pending_body_ = 0;  ///< token index of the next body '{'
  int next_token_ = 1;            ///< acquisition-instance counter
};

}  // namespace

UnitModel extract_unit(std::string unit_name,
                       const std::vector<SourceFile>& files) {
  UnitModel model;
  model.name = std::move(unit_name);

  std::vector<std::vector<Token>> token_streams;
  token_streams.reserve(files.size());
  for (const SourceFile& file : files) {
    model.files.push_back(file.path);
    token_streams.push_back(tokenize(file.content));
  }

  // Phase 1: declarations only, so accesses in a .cc resolve variables
  // declared in a sibling header regardless of file order.
  for (std::size_t i = 0; i < files.size(); ++i) {
    FileExtractor(files[i].path, token_streams[i], /*decls_only=*/true, model)
        .run();
  }
  // Phase 2: sites, locksets, waits, annotations, calls.
  for (std::size_t i = 0; i < files.size(); ++i) {
    FileExtractor(files[i].path, token_streams[i], /*decls_only=*/false, model)
        .run();
  }
  return model;
}

}  // namespace cbp::sa
