// Static atomicity-violation pass.
//
// The dynamic AtomicityCandidateDetector flags a read–check–write of one
// SharedVar that spans a lock release: thread A reads x under m, drops
// m, re-takes m, and writes x — any interleaved writer between the two
// critical sections invalidates the check.  This pass finds the same
// shape statically: a read and a later write of the same variable, in
// the same function and file, both under the same mutex but under
// *different acquisition instances* of it (the extractor tokens every
// acquisition; differing tokens mean the lock was released and
// re-acquired between the sites).  Interprocedurally-inherited holds
// carry token -1 — one instance per function — and are excluded, since
// a caller-held lock spans the whole callee.
#pragma once

#include <vector>

#include "sa/model.h"

namespace cbp::sa {

/// Atomicity-violation candidates for one unit (site_a = the read,
/// site_b = the write it feeds).
std::vector<Candidate> atomicity_pass(const UnitModel& model);

}  // namespace cbp::sa
