// Lossy-but-line-accurate C++ tokenizer for the static candidate miner.
//
// cbp-sa deliberately does not embed a C++ frontend: the instrumentation
// surface it scans for (SharedVar accesses, TrackedMutex/TrackedLock
// acquisition sites, TrackedCondVar waits, CBP_* macros and *Trigger
// insertions) is a small, regular vocabulary, so a robust lexer plus a
// pattern-directed extractor is sufficient — and it keeps the analyzer
// dependency-free and fast enough to run over every app on every CI push.
//
// The tokenizer strips comments and preprocessor directives (honouring
// line continuations), handles string/char/raw-string literals and C++14
// digit separators (10'000), and records the 1-based source line of
// every token so extracted sites line up exactly with the SourceLocs the
// dynamic detectors report.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace cbp::sa {

enum class TokKind : std::uint8_t {
  kIdent,   ///< identifier or keyword
  kNumber,  ///< numeric literal (including 1'000'000, 0x1f, 1.5e3)
  kString,  ///< string literal, text WITHOUT quotes (raw strings included)
  kChar,    ///< character literal, text without quotes
  kPunct,   ///< punctuation; multi-char only for "::" and "->"
};

struct Token {
  TokKind kind = TokKind::kPunct;
  std::string text;
  std::uint32_t line = 0;  ///< 1-based line of the token's first character

  [[nodiscard]] bool is(TokKind k, std::string_view t) const {
    return kind == k && text == t;
  }
  [[nodiscard]] bool is_ident(std::string_view t) const {
    return is(TokKind::kIdent, t);
  }
  [[nodiscard]] bool is_punct(std::string_view t) const {
    return is(TokKind::kPunct, t);
  }
};

/// Lexes `source` into tokens.  Never throws on malformed input: an
/// unterminated literal simply ends at end-of-file — resilience matters
/// more than diagnostics for a miner that scans whole source trees.
std::vector<Token> tokenize(std::string_view source);

}  // namespace cbp::sa
