#include "sa/placement/placement.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <set>
#include <sstream>

#include "obs/json.h"

namespace cbp::sa::placement {
namespace {

std::string get_string(const obs::json::Value& v, const char* key) {
  const obs::json::Value* field = v.get(key);
  return field != nullptr && field->is_string() ? field->string : "";
}

std::uint32_t get_line(const obs::json::Value& v, const char* key) {
  const obs::json::Value* field = v.get(key);
  if (field == nullptr || !field->is_number() || field->number < 0) return 0;
  return static_cast<std::uint32_t>(field->number);
}

void add_pair(const char* kind, const obs::json::Value& row,
              const char* prefix_a, const char* prefix_b,
              std::vector<RecordedSitePair>& pairs) {
  RecordedSitePair p;
  p.kind = kind;
  p.file_a = get_string(row, (std::string(prefix_a) + "file").c_str());
  p.line_a = get_line(row, (std::string(prefix_a) + "line").c_str());
  p.file_b = get_string(row, (std::string(prefix_b) + "file").c_str());
  p.line_b = get_line(row, (std::string(prefix_b) + "line").c_str());
  if (p.line_a != 0 && p.line_b != 0) pairs.push_back(std::move(p));
}

/// Lock names appear inside pattern site labels `acq(<name>)`; the
/// pattern grammar closes a label at the first ')', so anything not an
/// identifier character (or a paren) folds to '-'.
std::string sanitize_lock_name(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    const bool ok = (std::isalnum(static_cast<unsigned char>(c)) != 0) ||
                    c == '_' || c == '-' || c == '.';
    out.push_back(ok ? c : '-');
  }
  return out.empty() ? std::string("lock") : out;
}

/// A cycle witness as a pattern: thread i+1 acquires lock i then blocks
/// acquiring lock i+1 — expressed as the acquisition chain over n
/// distinct threads, closed by the last thread releasing (the §3 pause
/// window: every earlier acq is still held when the last one lands).
std::string cycle_pattern(const LockCycle& cycle) {
  std::ostringstream out;
  for (std::size_t i = 0; i < cycle.locks.size(); ++i) {
    if (i != 0) out << '.';
    out << "acq(" << sanitize_lock_name(cycle.locks[i]) << "):t" << (i + 1);
  }
  out << ".rel(" << sanitize_lock_name(cycle.locks.back()) << "):t"
      << cycle.locks.size();
  return out.str();
}

/// Unordered site-pair match: the candidate's two sites equal the
/// recorded pair's two sites in either orientation.
bool sites_match(const Candidate& c, const RecordedSitePair& p) {
  const auto same = [](const SiteRef& s, const std::string& file,
                       std::uint32_t line) {
    return s.line == line && s.basename() == file;
  };
  return (same(c.site_a, p.file_a, p.line_a) &&
          same(c.site_b, p.file_b, p.line_b)) ||
         (same(c.site_a, p.file_b, p.line_b) &&
          same(c.site_b, p.file_a, p.line_a));
}

}  // namespace

bool parse_detector_json(const std::string& text,
                         std::vector<RecordedSitePair>& pairs,
                         std::string& error) {
  const obs::json::ValuePtr root = obs::json::parse(text, error);
  if (root == nullptr) return false;
  if (root->get("detector_dump") == nullptr) {
    error = "not a detector dump (missing \"detector_dump\")";
    return false;
  }
  struct Section {
    const char* key;
    const char* kind;
  };
  for (const Section s : {Section{"races", "race"},
                          Section{"contentions", "contention"}}) {
    const obs::json::Value* list = root->get(s.key);
    if (list == nullptr) continue;
    if (!list->is_array()) {
      error = std::string("\"") + s.key + "\" is not an array";
      return false;
    }
    for (const obs::json::ValuePtr& item : list->array) {
      if (item == nullptr || !item->is_object()) continue;
      RecordedSitePair p;
      p.kind = s.kind;
      p.file_a = get_string(*item, "file_a");
      p.line_a = get_line(*item, "line_a");
      p.file_b = get_string(*item, "file_b");
      p.line_b = get_line(*item, "line_b");
      if (p.line_a != 0 && p.line_b != 0) pairs.push_back(std::move(p));
    }
  }
  if (const obs::json::Value* list = root->get("deadlocks");
      list != nullptr && list->is_array()) {
    for (const obs::json::ValuePtr& item : list->array) {
      if (item == nullptr) continue;
      const obs::json::Value* legs = item->get("legs");
      if (legs == nullptr || !legs->is_array()) continue;
      // Adjacent legs pair up: leg i's site with leg i+1's (cyclically),
      // which for a 2-cycle yields the crossed acquisition pair.
      const std::size_t n = legs->array.size();
      for (std::size_t i = 0; n >= 2 && i < n; ++i) {
        const obs::json::Value* a = legs->array[i].get();
        const obs::json::Value* b = legs->array[(i + 1) % n].get();
        if (a == nullptr || b == nullptr) continue;
        RecordedSitePair p;
        p.kind = "deadlock";
        p.file_a = get_string(*a, "file");
        p.line_a = get_line(*a, "line");
        p.file_b = get_string(*b, "file");
        p.line_b = get_line(*b, "line");
        if (p.line_a != 0 && p.line_b != 0) pairs.push_back(std::move(p));
        if (n == 2) break;  // both orientations match the same candidates
      }
    }
  }
  if (const obs::json::Value* list = root->get("atomicity");
      list != nullptr && list->is_array()) {
    for (const obs::json::ValuePtr& item : list->array) {
      if (item == nullptr || !item->is_object()) continue;
      add_pair("atomicity", *item, "begin_", "end_", pairs);
    }
  }
  return true;
}

std::uint64_t derive_ignore_first(const obs::BreakpointTelemetry& row) {
  const std::uint64_t runs = std::max<std::uint64_t>(row.runs, 1);
  const std::uint64_t arrivals = row.stats.arrivals;
  const std::uint64_t participants = row.stats.participants;
  if (arrivals <= participants) return 0;
  // Warmup arrivals per run: everything that arrived but never became a
  // participant.  Small counts are noise, not a warmup phase.
  const std::uint64_t warmup = (arrivals - participants) / runs;
  if (warmup < 32) return 0;
  // Back off so jitter in the warmup count can't skip the real arrival.
  const std::uint64_t slack = std::max<std::uint64_t>(2, warmup / 64);
  return warmup - slack;
}

std::uint64_t derive_pause_ms(const obs::BreakpointTelemetry& row,
                              const PlacementOptions& options) {
  if (row.step_gap_ns == 0) return options.default_pause_ms;
  const model::ModelInputs base = row.inputs.sanitized();
  // T-doubling search: grow the pause until the §3 btrigger bound
  // reaches the target or saturates (marginal gain < 0.005/doubling).
  std::uint64_t t = std::max<std::uint64_t>(base.pause_steps, 1);
  double p = model::p_hit_btrigger(base.n_steps, base.m_visits,
                                   base.big_m_visits, t);
  for (int i = 0; i < 20 && p < options.target_hit; ++i) {
    const double next = model::p_hit_btrigger(base.n_steps, base.m_visits,
                                              base.big_m_visits, t * 2);
    if (next - p < 0.005) break;
    t *= 2;
    p = next;
  }
  const std::uint64_t ms = t * row.step_gap_ns / 1000000;
  return std::clamp(ms, options.min_pause_ms, options.max_pause_ms);
}

PlacementPlan fuse(const AnalysisResult& analysis,
                   const std::vector<RecordedSitePair>& recorded,
                   const std::vector<obs::BreakpointTelemetry>& telemetry,
                   const PlacementOptions& options) {
  PlacementPlan plan;
  for (const Candidate& c : analysis.candidates) {
    PlacementEntry entry;
    entry.breakpoint =
        c.existing_runtime.empty() ? c.spec_name : c.existing_runtime;
    entry.kind = c.kind;
    entry.subject = c.subject;
    entry.site_a = c.site_a.str();
    entry.site_b = c.site_b.str();
    entry.static_score = c.score;
    entry.pause_ms = options.default_pause_ms;
    for (const RecordedSitePair& pair : recorded) {
      if (sites_match(c, pair)) {
        entry.dynamic_confirmed = true;
        break;
      }
    }
    for (const obs::BreakpointTelemetry& row : telemetry) {
      if (row.name != entry.breakpoint) continue;
      entry.has_telemetry = true;
      entry.pause_ms = derive_pause_ms(row, options);
      entry.ignore_first = derive_ignore_first(row);
      if (row.runs > 0) {
        const model::Interval wilson = model::wilson_interval(
            static_cast<int>(row.runs_hit), static_cast<int>(row.runs));
        entry.has_prediction = true;
        entry.predicted_low = wilson.low;
        entry.predicted_high = wilson.high;
        entry.predicted_center = (wilson.low + wilson.high) / 2.0;
      }
      break;
    }
    plan.entries.push_back(std::move(entry));
  }

  // Lock-order cycles become pattern placements: the acquisition chain
  // is exactly the k-site event pattern the matcher runs, so every
  // cycle — not just the 2-cycles that fit a rendezvous — gets a
  // ready-to-run entry.
  for (const LockCycle& cycle : analysis.cycles) {
    if (cycle.locks.size() < 2) continue;
    PlacementEntry entry;
    std::string name = "sa-pattern";
    for (const std::string& lock : cycle.locks) {
      name += '-';
      name += sanitize_lock_name(lock);
    }
    entry.breakpoint = std::move(name);
    entry.kind = Candidate::Kind::kDeadlock;
    entry.subject = cycle.displays.empty() ? cycle.locks.front()
                                           : cycle.displays.front();
    if (!cycle.sites.empty()) {
      entry.site_a = cycle.sites.front().str();
      entry.site_b = cycle.sites.back().str();
    }
    entry.static_score = cycle.score;
    entry.pause_ms = options.default_pause_ms;
    entry.pattern = cycle_pattern(cycle);
    for (const obs::BreakpointTelemetry& row : telemetry) {
      if (row.name != entry.breakpoint) continue;
      entry.has_telemetry = true;
      entry.pause_ms = derive_pause_ms(row, options);
      entry.ignore_first = derive_ignore_first(row);
      if (row.runs > 0) {
        const model::Interval wilson = model::wilson_interval(
            static_cast<int>(row.runs_hit), static_cast<int>(row.runs));
        entry.has_prediction = true;
        entry.predicted_low = wilson.low;
        entry.predicted_high = wilson.high;
        entry.predicted_center = (wilson.low + wilson.high) / 2.0;
      }
      break;
    }
    plan.entries.push_back(std::move(entry));
  }

  std::sort(plan.entries.begin(), plan.entries.end(),
            [](const PlacementEntry& a, const PlacementEntry& b) {
              if (a.tier() != b.tier()) return a.tier() > b.tier();
              if (a.predicted_center != b.predicted_center) {
                return a.predicted_center > b.predicted_center;
              }
              if (a.static_score != b.static_score) {
                return a.static_score > b.static_score;
              }
              return a.breakpoint < b.breakpoint;
            });
  // One spec entry per breakpoint name; the strongest evidence (first
  // after the sort) wins.
  std::set<std::string> seen;
  std::vector<PlacementEntry> unique;
  for (PlacementEntry& entry : plan.entries) {
    if (seen.insert(entry.breakpoint).second) {
      unique.push_back(std::move(entry));
    }
  }
  plan.entries = std::move(unique);
  return plan;
}

std::string render_plan(const PlacementPlan& plan) {
  std::ostringstream out;
  out << "placement plan: " << plan.entries.size() << " breakpoint"
      << (plan.entries.size() == 1 ? "" : "s") << " (ranked by evidence)\n";
  for (std::size_t i = 0; i < plan.entries.size(); ++i) {
    const PlacementEntry& e = plan.entries[i];
    out << "\n[" << (i + 1) << "] " << e.breakpoint << "\n  "
        << kind_str(e.kind) << " '" << e.subject << "' " << e.site_a
        << " <-> " << e.site_b << "\n  evidence: static score "
        << e.static_score;
    if (e.dynamic_confirmed) out << ", detector-confirmed";
    if (e.has_telemetry) out << ", telemetry-recorded";
    out << " (tier " << e.tier() << ")\n";
    if (!e.pattern.empty()) out << "  pattern: " << e.pattern << "\n";
    out << "  derived: pause=" << e.pause_ms << "ms";
    if (e.ignore_first > 0) out << " ignore_first=" << e.ignore_first;
    if (e.has_prediction) {
      char buf[96];
      std::snprintf(buf, sizeof(buf),
                    " predicted hit %.4f (95%% CI [%.4f, %.4f])",
                    e.predicted_center, e.predicted_low, e.predicted_high);
      out << buf;
    }
    out << "\n";
  }
  return out.str();
}

std::string render_plan_spec(const PlacementPlan& plan) {
  std::ostringstream out;
  out << "# cbp-sa placement plan: static candidates fused with dynamic\n"
      << "# detector reports and recorded telemetry; pause/ignore_first\n"
      << "# derived from the \xc2\xa7" "3 model inputs.  Ready to run:\n"
      << "# load via BreakpointSpec::parse / install().\n";
  for (const PlacementEntry& e : plan.entries) {
    out << "# placement: " << kind_str(e.kind) << " '" << e.subject << "' "
        << e.site_a << " <-> " << e.site_b << " tier=" << e.tier()
        << " score=" << e.static_score << "\n";
    out << e.breakpoint;
    if (!e.pattern.empty()) out << " pattern=" << e.pattern;
    out << " pause=" << e.pause_ms;
    if (e.ignore_first > 0) out << " ignore_first=" << e.ignore_first;
    out << " from=static";
    if (e.has_prediction) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), " predicted=%.4f", e.predicted_center);
      out << buf;
    }
    if (e.dynamic_confirmed || e.has_telemetry) out << " confirmed";
    out << "\n";
  }
  return out.str();
}

}  // namespace cbp::sa::placement
