// Closed-loop predictive breakpoint placement (DESIGN.md §5f).
//
// The paper's Methodology II loop — pick sites, tune T, re-run — is
// closed here: static candidates (src/sa passes), dynamic detector
// reports (src/detect JSON export), and obs telemetry (recorded
// predicted-vs-observed runs) fuse into one ranked PlacementPlan whose
// entries are ready-to-run specs.
//
// Evidence tiers (strongest first):
//   2  telemetry  — a recorded run exercised this breakpoint; T and
//                   ignore_first are derived from the §3 model inputs
//                   the obs layer estimated, and the prediction is the
//                   Wilson interval of the recorded hit rate;
//   1  dynamic    — a detector reported the same (l1, l2) site pair;
//   0  static     — mined from source text alone.
// Within a tier, predicted hit probability then static score rank.
//
// Derivations (telemetry entries):
//   ignore_first — warmup arrivals per run, (arrivals - participants) /
//                  runs, backed off slightly so the real arrival is
//                  never skipped; small counts round to 0 (§6.3).
//   pause (T)    — start from the recorded pause in steps, double until
//                  the §3 btrigger bound reaches the target hit rate or
//                  stops improving, then convert steps to wall time via
//                  the recorded per-step gap and clamp.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "model/probability.h"
#include "obs/telemetry.h"
#include "sa/analyzer.h"
#include "sa/model.h"

namespace cbp::sa::placement {

/// One site pair from a dynamic detector dump (detect/json_export.h),
/// flattened: races/contentions/atomicity map (a, b) to their two
/// sites, deadlocks contribute one pair per adjacent leg pair.
struct RecordedSitePair {
  std::string kind;  ///< "race", "contention", "deadlock", "atomicity"
  std::string file_a;  ///< basename
  std::uint32_t line_a = 0;
  std::string file_b;
  std::uint32_t line_b = 0;
};

/// Parses a detect::write_json dump.  Returns false + error on
/// malformed input or a missing "detector_dump" marker.
bool parse_detector_json(const std::string& text,
                         std::vector<RecordedSitePair>& pairs,
                         std::string& error);

struct PlacementOptions {
  double target_hit = 0.9;  ///< pause search stops at this btrigger bound
  std::uint64_t min_pause_ms = 20;
  std::uint64_t max_pause_ms = 2000;
  std::uint64_t default_pause_ms = 100;  ///< no-telemetry fallback
};

/// One ranked placement: a breakpoint name plus its derived knobs and
/// the evidence that put it there.
struct PlacementEntry {
  std::string breakpoint;  ///< runtime name (resolved annotation) or spec name
  Candidate::Kind kind = Candidate::Kind::kConflict;
  std::string subject;
  std::string site_a;  ///< display form basename:line
  std::string site_b;
  int static_score = 0;
  bool dynamic_confirmed = false;  ///< a detector reported the same pair
  bool has_telemetry = false;      ///< a recorded run exercised the name
  std::uint64_t pause_ms = 0;      ///< derived T, wall-clock
  std::uint64_t ignore_first = 0;  ///< derived §6.3 refinement (0 = none)
  /// Predicted hit probability; for telemetry entries the 95% Wilson
  /// interval of the recorded runs, with `center` its midpoint.  For
  /// the rest the model has no inputs: [0, 1] and no center emitted.
  bool has_prediction = false;
  double predicted_low = 0.0;
  double predicted_high = 1.0;
  double predicted_center = 0.0;
  /// Non-empty for pattern placements (core/pattern.h): a lock-order
  /// cycle witness rendered as its acquisition chain, e.g. a 2-cycle
  /// becomes `acq(A):t1.acq(B):t2.rel(B):t2`.  Rendered as a
  /// `pattern=` spec key; empty entries stay plain rendezvous.
  std::string pattern;

  [[nodiscard]] int tier() const {
    return (has_telemetry ? 2 : 0) + (dynamic_confirmed ? 1 : 0);
  }
};

struct PlacementPlan {
  std::vector<PlacementEntry> entries;  ///< ranked, best first
};

/// Derives the §6.3 ignore_first refinement from a recorded run (see
/// file comment).
std::uint64_t derive_ignore_first(const obs::BreakpointTelemetry& row);

/// Derives the pause (T) in wall-clock ms from a recorded run.
std::uint64_t derive_pause_ms(const obs::BreakpointTelemetry& row,
                              const PlacementOptions& options);

/// Fuses static candidates with recorded evidence into a ranked plan.
/// One entry per breakpoint name (strongest evidence wins).
PlacementPlan fuse(const AnalysisResult& analysis,
                   const std::vector<RecordedSitePair>& recorded,
                   const std::vector<obs::BreakpointTelemetry>& telemetry,
                   const PlacementOptions& options = {});

/// Human-readable plan, one block per entry.
std::string render_plan(const PlacementPlan& plan);

/// Spec-file form: `# placement:` provenance comments plus one
/// ready-to-run entry per breakpoint, parseable by BreakpointSpec.
std::string render_plan_spec(const PlacementPlan& plan);

}  // namespace cbp::sa::placement
