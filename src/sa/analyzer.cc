#include "sa/analyzer.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "sa/atomicity_pass.h"
#include "sa/call_graph.h"
#include "sa/lock_graph_pass.h"
#include "sa/lockset_pass.h"
#include "sa/rank.h"

namespace cbp::sa {
namespace {

namespace fs = std::filesystem;

bool is_source_file(const fs::path& path) {
  static constexpr std::string_view kExts[] = {".cc", ".cpp", ".cxx",
                                               ".h",  ".hpp", ".hh"};
  const std::string ext = path.extension().string();
  return std::find(std::begin(kExts), std::end(kExts), ext) !=
         std::end(kExts);
}

bool read_file(const fs::path& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

AnalysisResult analyze_units(
    std::vector<std::pair<std::string, std::vector<SourceFile>>> units,
    const AnalysisOptions& options) {
  AnalysisResult result;
  for (auto& [name, files] : units) {
    // Deterministic file order within the unit.
    std::sort(files.begin(), files.end(),
              [](const SourceFile& a, const SourceFile& b) {
                return a.path < b.path;
              });
    UnitModel model = extract_unit(name, files);
    if (options.interprocedural) propagate_locksets(model);
    std::vector<Candidate> found = lockset_pass(model);
    std::vector<Candidate> crossed = lock_graph_pass(model);
    found.insert(found.end(), crossed.begin(), crossed.end());
    if (options.include_contention) {
      std::vector<Candidate> contended = contention_pass(model);
      found.insert(found.end(), contended.begin(), contended.end());
    }
    if (options.include_atomicity) {
      std::vector<Candidate> atomic = atomicity_pass(model);
      found.insert(found.end(), atomic.begin(), atomic.end());
    }
    std::vector<LockCycle> cycles = find_lock_cycles(model);
    result.cycles.insert(result.cycles.end(), cycles.begin(), cycles.end());
    // The boolean stays on the uncapped DFS (find_lock_cycles bounds
    // length and count; a pathological >8-cycle must still set it).
    result.lock_graph_has_cycle =
        result.lock_graph_has_cycle || lock_graph_has_cycle(model);
    result.candidates.insert(result.candidates.end(), found.begin(),
                             found.end());
    result.units.push_back(std::move(model));
  }
  rank_candidates(result.candidates, result.units);
  // Per-unit cycle lists are ranked; re-rank globally across units.
  std::sort(result.cycles.begin(), result.cycles.end(),
            [](const LockCycle& a, const LockCycle& b) {
              if (a.score != b.score) return a.score > b.score;
              if (a.unit != b.unit) return a.unit < b.unit;
              if (a.locks != b.locks) return a.locks < b.locks;
              return a.sites < b.sites;
            });
  return result;
}

}  // namespace

AnalysisResult analyze_sources(const std::string& unit_name,
                               const std::vector<SourceFile>& files,
                               const AnalysisOptions& options) {
  return analyze_units({{unit_name, files}}, options);
}

AnalysisResult analyze_paths(const std::vector<std::string>& paths,
                             const AnalysisOptions& options) {
  // Group discovered files by parent directory; the directory basename
  // names the unit (full path keeps distinct same-named directories
  // apart in the map, sorted for determinism).
  std::map<std::string, std::vector<SourceFile>> by_dir;
  std::error_code ec;
  for (const std::string& raw : paths) {
    const fs::path path(raw);
    if (fs::is_directory(path, ec)) {
      for (auto it = fs::recursive_directory_iterator(
               path, fs::directory_options::skip_permission_denied, ec);
           it != fs::recursive_directory_iterator(); it.increment(ec)) {
        if (ec) break;
        if (!it->is_regular_file(ec) || !is_source_file(it->path())) continue;
        std::string content;
        if (read_file(it->path(), content)) {
          by_dir[it->path().parent_path().string()].push_back(
              SourceFile{it->path().string(), std::move(content)});
        }
      }
    } else if (fs::is_regular_file(path, ec) && is_source_file(path)) {
      std::string content;
      if (read_file(path, content)) {
        by_dir[path.parent_path().string()].push_back(
            SourceFile{path.string(), std::move(content)});
      }
    }
  }

  std::vector<std::pair<std::string, std::vector<SourceFile>>> units;
  units.reserve(by_dir.size());
  for (auto& [dir, files] : by_dir) {
    const std::string name = fs::path(dir).filename().string();
    units.emplace_back(name.empty() ? dir : name, std::move(files));
  }
  return analyze_units(std::move(units), options);
}

}  // namespace cbp::sa
