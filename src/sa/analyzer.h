// cbp-sa front door: file loading, unit grouping, pass orchestration.
//
// An analysis unit is a directory's worth of sources (the .cc files plus
// the sibling headers that declare their SharedVars and TrackedMutexes).
// analyze_paths() expands files/directories, groups them by parent
// directory, extracts a model per unit, runs the lockset, lock-graph,
// and contention passes, and globally ranks the combined candidates.
#pragma once

#include <string>
#include <vector>

#include "sa/extractor.h"
#include "sa/model.h"

namespace cbp::sa {

struct AnalysisOptions {
  bool include_contention = true;  ///< emit lock-contention candidates
  bool include_atomicity = true;   ///< emit atomicity-violation candidates
  /// Propagate locksets over the call graph before the per-site passes
  /// (locks held at every call site of a function flow into its body).
  /// Off by default: goldens pin the intraprocedural baseline, and the
  /// propagation is a strict widening — enable via `cbp-sa --interproc`.
  bool interprocedural = false;
};

struct AnalysisResult {
  std::vector<UnitModel> units;       ///< one per directory, sorted
  std::vector<Candidate> candidates;  ///< ranked, best first
  std::vector<LockCycle> cycles;      ///< ranked lock-order cycles, all units
  bool lock_graph_has_cycle = false;  ///< any unit, any cycle length
};

/// Analyzes pre-loaded sources as one unit (the test entry point).
AnalysisResult analyze_sources(const std::string& unit_name,
                               const std::vector<SourceFile>& files,
                               const AnalysisOptions& options = {});

/// Analyzes files and/or directories (recursing into directories for
/// .cc/.cpp/.cxx/.h/.hpp/.hh files).  Unreadable paths are skipped.
AnalysisResult analyze_paths(const std::vector<std::string>& paths,
                             const AnalysisOptions& options = {});

}  // namespace cbp::sa
