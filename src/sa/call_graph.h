// Name-based call graph + interprocedural lockset propagation.
//
// The extractor records which function every access/acquire sits in and
// every `callee(...)` call site with the lockset held at the call.  This
// pass joins them: a function's *entry lockset* is the set of mutexes
// held at EVERY call site that reaches it —
//
//   entry(f) = ∩ over call sites s of f:  locks_held(s) ∪ entry(caller(s))
//
// computed as a greatest fixpoint (functions start at TOP = all mutexes
// in the unit, so recursion converges from above; a function with no
// in-unit callers gets the empty set — it may be a thread entry point).
// The intersection keeps the propagation sound under name-based
// identity: a lock flows into a callee only when every path in.
//
// After convergence, the model is augmented in place: entry locks join
// each access's lockset (so the intraprocedural lockset/lock-graph
// passes see through helper functions for free) and each acquire's held
// set (so crossed lock orders split across functions become visible).
// Inherited holds carry token -1 — one acquisition instance per
// function — so the atomicity pass never mistakes them for a
// release/re-acquire.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "sa/model.h"

namespace cbp::sa {

/// The call graph of one unit, restricted to functions defined in it.
struct CallGraph {
  /// callee -> call sites targeting it (order: as extracted).
  std::map<std::string, std::vector<CallSite>> callers;
  /// function -> entry lockset (sorted); absent == empty.
  std::map<std::string, std::vector<std::string>> entry_locks;
};

/// Builds the unit's call graph and solves the entry-lockset fixpoint.
/// Does not modify `model`.
CallGraph build_call_graph(const UnitModel& model);

/// Builds the call graph and folds the solved entry locksets into the
/// model's accesses and acquires (see file comment).  Returns the graph
/// for reporting.
CallGraph propagate_locksets(UnitModel& model);

/// Stable text rendering of one unit's call graph and entry locksets
/// (the `cbp-sa --calls` output).
std::string render_call_graph(const UnitModel& model, const CallGraph& graph);

}  // namespace cbp::sa
