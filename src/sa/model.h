// The static access model: what the site extractor mines out of one
// analysis unit (a directory's worth of sources = a translation unit
// plus its sibling headers), and the candidate type the passes produce.
//
// Identity is *name-based*: a shared variable is its member/parameter
// name, a mutex is the last component of its receiver expression
// (`this->mu_` and `mu_` collapse).  That is a sound over-approximation
// for the paper's workloads — distinct objects of one class merge into
// one "field", exactly the granularity Eraser reports at — and it is
// what lets cbp-sa run with no type information at all.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace cbp::sa {

/// A mined source site.  `file` is the full path as given to the
/// analyzer; display/reporting uses the basename (SourceLoc style).
struct SiteRef {
  std::string file;
  std::uint32_t line = 0;

  [[nodiscard]] std::string basename() const {
    const auto slash = file.rfind('/');
    return slash == std::string::npos ? file : file.substr(slash + 1);
  }
  [[nodiscard]] std::string str() const {
    return basename() + ":" + std::to_string(line);
  }
  friend bool operator<(const SiteRef& a, const SiteRef& b) {
    if (a.file != b.file) return a.file < b.file;
    return a.line < b.line;
  }
  friend bool operator==(const SiteRef& a, const SiteRef& b) {
    return a.line == b.line && a.file == b.file;
  }
};

/// `SharedVar<T> name` declaration (member, local, or reference param).
struct VarDecl {
  std::string name;
  SiteRef decl;
};

/// `TrackedMutex name{"tag"}` declaration.
struct MutexDecl {
  std::string name;
  std::string tag;  ///< empty when the declaration carries no tag string
  SiteRef decl;
};

/// One acquisition *instance* a site is executed under: the mutex name
/// plus a token identifying which textual acquisition produced it.  Two
/// holds of the same mutex with different tokens mean the lock was
/// released and re-acquired in between — the atomicity pass's signal.
/// Token -1 marks locks inherited interprocedurally (one entry per
/// function, so inherited holds never fake a release/re-acquire).
struct HeldLock {
  std::string mutex;
  int token = 0;

  friend bool operator==(const HeldLock& a, const HeldLock& b) {
    return a.token == b.token && a.mutex == b.mutex;
  }
};

/// One instrumented read or write of a shared variable, with the
/// statically-enclosing lockset at the access site.
struct Access {
  std::string var;
  SiteRef site;
  bool is_write = false;
  std::vector<std::string> lockset;  ///< sorted, deduplicated mutex names
  std::vector<HeldLock> holds;       ///< acquisition instances (unsorted)
  std::string function;  ///< enclosing function name; "" at file scope
};

/// One lock-acquisition site (TrackedLock ctor, .lock(), .lock_or_stall(),
/// .try_lock()) with the set of locks already held there.
struct Acquire {
  std::string mutex;
  SiteRef site;
  bool blocking = true;  ///< false for try_lock (cannot deadlock)
  std::vector<std::string> held;  ///< sorted; excludes `mutex` itself
  std::string function;  ///< enclosing function name; "" at file scope
};

/// A function definition seen in the unit (name-based, like everything
/// else: overloads and same-named methods of different classes merge).
struct FunctionDecl {
  std::string name;
  SiteRef decl;
};

/// A call site `callee(...)` inside `caller`, with the lockset held at
/// the call.  Callees are recorded unfiltered; the call-graph pass keeps
/// only calls to functions defined in the unit.
struct CallSite {
  std::string caller;  ///< enclosing function; "" at file scope
  std::string callee;
  SiteRef site;
  std::vector<std::string> locks_held;  ///< sorted, deduplicated
};

/// One condition wait site (`cv.wait*(mu, ...)`).
struct Wait {
  std::string condvar;
  std::string mutex;
  SiteRef site;
};

/// An already-inserted breakpoint: a CBP_* macro or a *Trigger
/// construction.  Used to cross-reference candidates against the bugs
/// Methodology I/II already annotated.
struct Annotation {
  std::string kind;  ///< "conflict", "deadlock", "order", "atomicity"
  std::string name;  ///< first-argument literal or identifier
  SiteRef site;
};

/// Everything extracted from one analysis unit.
struct UnitModel {
  std::string name;  ///< unit label (directory basename)
  std::vector<std::string> files;
  std::vector<VarDecl> vars;
  std::vector<MutexDecl> mutexes;
  std::vector<Access> accesses;
  std::vector<Acquire> acquires;
  std::vector<Wait> waits;
  std::vector<Annotation> annotations;
  std::vector<FunctionDecl> functions;
  std::vector<CallSite> calls;
  /// String constants (`kName = "literal"`), used to resolve annotation
  /// identifiers like kRace1 to the runtime breakpoint name they carry.
  std::map<std::string, std::string> consts;

  [[nodiscard]] bool has_function(const std::string& name_in) const {
    for (const FunctionDecl& f : functions) {
      if (f.name == name_in) return true;
    }
    return false;
  }

  [[nodiscard]] const MutexDecl* find_mutex(const std::string& name_in) const {
    for (const MutexDecl& m : mutexes) {
      if (m.name == name_in) return &m;
    }
    return nullptr;
  }

  /// Display name for a mutex: its declared tag when present.
  [[nodiscard]] std::string mutex_display(const std::string& name_in) const {
    const MutexDecl* decl = find_mutex(name_in);
    return decl != nullptr && !decl->tag.empty() ? decl->tag : name_in;
  }
};

/// A mined breakpoint candidate: the static analogue of the dynamic
/// detectors' Race/Contention/Deadlock reports, i.e. an (l1, l2, phi)
/// pair the engine can plant a concurrent breakpoint on.
struct Candidate {
  enum class Kind : std::uint8_t {
    kConflict,
    kContention,
    kDeadlock,
    kAtomicity,
  };

  Kind kind = Kind::kConflict;
  std::string unit;
  std::string subject;  ///< variable name, lock tag, or "lockA <-> lockB"
  SiteRef site_a;
  SiteRef site_b;
  bool a_is_write = false;  ///< conflicts only
  bool b_is_write = false;  ///< conflicts only
  std::vector<std::string> locks_a;  ///< guarding/held locks at site_a
  std::vector<std::string> locks_b;  ///< guarding/held locks at site_b
  std::string mutex_a;  ///< deadlocks: lock acquired at site_a
  std::string mutex_b;  ///< deadlocks: lock acquired at site_b
  int score = 0;          ///< filled by the ranking pass
  std::string existing;   ///< nearby already-inserted breakpoint, if any
  /// `existing` resolved to the runtime breakpoint name it denotes (via
  /// the unit's string-constant table); empty when unresolvable.
  std::string existing_runtime;
  std::string spec_name;  ///< generated breakpoint name (ranking pass)
};

/// One directed cycle in a unit's static lock-order graph, with the
/// witness acquisition chain: sites[i] is where locks[(i+1) % n] is
/// acquired while locks[i] is held.  `displays` carries the declared
/// tags (when present) aligned with `locks`.
struct LockCycle {
  std::string unit;
  std::vector<std::string> locks;     ///< raw mutex names, cycle order
  std::vector<std::string> displays;  ///< tag or name, aligned with locks
  std::vector<SiteRef> sites;         ///< witness acquisition sites
  int score = 0;

  [[nodiscard]] std::size_t length() const { return locks.size(); }
};

[[nodiscard]] inline std::string kind_str(Candidate::Kind kind) {
  switch (kind) {
    case Candidate::Kind::kConflict:
      return "conflict";
    case Candidate::Kind::kContention:
      return "contention";
    case Candidate::Kind::kDeadlock:
      return "deadlock";
    case Candidate::Kind::kAtomicity:
      return "atomicity";
  }
  return "?";
}

}  // namespace cbp::sa
