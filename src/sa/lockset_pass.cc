#include "sa/lockset_pass.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>

namespace cbp::sa {
namespace {

bool disjoint(const std::vector<std::string>& a,
              const std::vector<std::string>& b) {
  for (const std::string& lock : a) {
    if (std::find(b.begin(), b.end(), lock) != b.end()) return false;
  }
  return true;
}

/// Orders the two sites of a pair canonically (file, line, read first).
bool site_before(const Access& a, const Access& b) {
  if (!(a.site == b.site)) return a.site < b.site;
  return !a.is_write && b.is_write;
}

}  // namespace

std::vector<Candidate> lockset_pass(const UnitModel& model) {
  // Group accesses per variable name (field granularity, like Eraser).
  std::map<std::string, std::vector<const Access*>> by_var;
  for (const Access& access : model.accesses) {
    by_var[access.var].push_back(&access);
  }

  std::vector<Candidate> out;
  for (const auto& [var, sites] : by_var) {
    std::set<std::tuple<std::string, std::uint32_t, bool, std::string,
                        std::uint32_t, bool>>
        seen;
    for (std::size_t i = 0; i < sites.size(); ++i) {
      for (std::size_t j = i + 1; j < sites.size(); ++j) {
        const Access* a = sites[i];
        const Access* b = sites[j];
        if (!a->is_write && !b->is_write) continue;  // read/read: no race
        if (a->site == b->site && a->is_write == b->is_write) continue;
        if (!disjoint(a->lockset, b->lockset)) continue;
        if (site_before(*b, *a)) std::swap(a, b);
        if (!seen
                 .insert({a->site.file, a->site.line, a->is_write,
                          b->site.file, b->site.line, b->is_write})
                 .second) {
          continue;
        }
        Candidate c;
        c.kind = Candidate::Kind::kConflict;
        c.unit = model.name;
        c.subject = var;
        c.site_a = a->site;
        c.site_b = b->site;
        c.a_is_write = a->is_write;
        c.b_is_write = b->is_write;
        c.locks_a = a->lockset;
        c.locks_b = b->lockset;
        out.push_back(std::move(c));
      }
    }
  }
  return out;
}

std::vector<Candidate> contention_pass(const UnitModel& model) {
  // Mutexes that guard at least one condition wait: the interesting
  // contention class (a reordered acquisition can strand the waiter).
  std::set<std::string> waited_on;
  for (const Wait& wait : model.waits) waited_on.insert(wait.mutex);

  std::map<std::string, std::vector<const Acquire*>> by_mutex;
  for (const Acquire& acquire : model.acquires) {
    if (waited_on.count(acquire.mutex) != 0) {
      by_mutex[acquire.mutex].push_back(&acquire);
    }
  }

  std::vector<Candidate> out;
  for (const auto& [mutex, sites] : by_mutex) {
    std::set<std::pair<std::string, std::string>> seen;
    for (std::size_t i = 0; i < sites.size(); ++i) {
      for (std::size_t j = i + 1; j < sites.size(); ++j) {
        const Acquire* a = sites[i];
        const Acquire* b = sites[j];
        if (a->site == b->site) continue;
        if (b->site < a->site) std::swap(a, b);
        if (!seen.insert({a->site.str(), b->site.str()}).second) continue;
        Candidate c;
        c.kind = Candidate::Kind::kContention;
        c.unit = model.name;
        c.subject = model.mutex_display(mutex);
        c.site_a = a->site;
        c.site_b = b->site;
        c.locks_a = a->held;
        c.locks_b = b->held;
        c.mutex_a = mutex;
        c.mutex_b = mutex;
        out.push_back(std::move(c));
      }
    }
  }
  return out;
}

}  // namespace cbp::sa
