#include "sa/call_graph.h"

#include <algorithm>
#include <set>
#include <sstream>

namespace cbp::sa {
namespace {

std::vector<std::string> sorted_union(const std::vector<std::string>& a,
                                      const std::vector<std::string>& b) {
  std::vector<std::string> out = a;
  out.insert(out.end(), b.begin(), b.end());
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<std::string> sorted_intersection(
    const std::vector<std::string>& a, const std::vector<std::string>& b) {
  std::vector<std::string> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

}  // namespace

CallGraph build_call_graph(const UnitModel& model) {
  CallGraph graph;
  for (const CallSite& call : model.calls) {
    if (!model.has_function(call.callee)) continue;  // out-of-unit target
    graph.callers[call.callee].push_back(call);
  }

  // Universe for the TOP initialisation of called functions; functions
  // nobody in the unit calls start (and stay) empty.
  std::vector<std::string> universe;
  for (const MutexDecl& m : model.mutexes) universe.push_back(m.name);
  std::sort(universe.begin(), universe.end());
  for (const auto& [callee, unused] : graph.callers) {
    (void)unused;
    graph.entry_locks[callee] = universe;
  }

  // Greatest fixpoint: every update shrinks a set, so the loop is
  // bounded by (#functions × #mutexes) iterations.
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto& [callee, sites] : graph.callers) {
      bool first = true;
      std::vector<std::string> meet;
      for (const CallSite& site : sites) {
        std::vector<std::string> in = site.locks_held;
        const auto caller_entry = graph.entry_locks.find(site.caller);
        if (caller_entry != graph.entry_locks.end()) {
          in = sorted_union(in, caller_entry->second);
        } else {
          std::sort(in.begin(), in.end());
          in.erase(std::unique(in.begin(), in.end()), in.end());
        }
        meet = first ? in : sorted_intersection(meet, in);
        first = false;
      }
      if (meet != graph.entry_locks[callee]) {
        graph.entry_locks[callee] = std::move(meet);
        changed = true;
      }
    }
  }
  return graph;
}

CallGraph propagate_locksets(UnitModel& model) {
  CallGraph graph = build_call_graph(model);
  const auto entry = [&graph](const std::string& fn)
      -> const std::vector<std::string>* {
    if (fn.empty()) return nullptr;
    const auto it = graph.entry_locks.find(fn);
    return it == graph.entry_locks.end() || it->second.empty() ? nullptr
                                                               : &it->second;
  };

  for (Access& access : model.accesses) {
    const std::vector<std::string>* inherited = entry(access.function);
    if (inherited == nullptr) continue;
    for (const std::string& mutex : *inherited) {
      if (std::find(access.lockset.begin(), access.lockset.end(), mutex) !=
          access.lockset.end()) {
        continue;  // already held locally at the site
      }
      access.lockset.push_back(mutex);
      access.holds.push_back(HeldLock{mutex, -1});
    }
    std::sort(access.lockset.begin(), access.lockset.end());
  }

  for (Acquire& acquire : model.acquires) {
    const std::vector<std::string>* inherited = entry(acquire.function);
    if (inherited == nullptr) continue;
    for (const std::string& mutex : *inherited) {
      if (mutex == acquire.mutex) continue;
      if (std::find(acquire.held.begin(), acquire.held.end(), mutex) !=
          acquire.held.end()) {
        continue;
      }
      acquire.held.push_back(mutex);
    }
    std::sort(acquire.held.begin(), acquire.held.end());
  }
  return graph;
}

std::string render_call_graph(const UnitModel& model, const CallGraph& graph) {
  std::ostringstream out;
  std::size_t in_unit = 0;
  for (const auto& [callee, sites] : graph.callers) in_unit += sites.size();
  out << "unit " << model.name << ": " << model.functions.size()
      << " function" << (model.functions.size() == 1 ? "" : "s") << ", "
      << in_unit << " in-unit call site"
      << (in_unit == 1 ? "" : "s") << "\n";

  // Edges, sorted by callee then site, one line per call.
  for (const auto& [callee, sites] : graph.callers) {
    std::vector<CallSite> sorted = sites;
    std::sort(sorted.begin(), sorted.end(),
              [](const CallSite& a, const CallSite& b) {
                if (!(a.site == b.site)) return a.site < b.site;
                return a.caller < b.caller;
              });
    for (const CallSite& call : sorted) {
      out << "  " << (call.caller.empty() ? "<file>" : call.caller) << " -> "
          << callee << " at " << call.site.str() << " locks_held={";
      for (std::size_t i = 0; i < call.locks_held.size(); ++i) {
        if (i != 0) out << ",";
        out << call.locks_held[i];
      }
      out << "}\n";
    }
  }

  bool header = false;
  for (const auto& [fn, locks] : graph.entry_locks) {
    if (locks.empty()) continue;
    if (!header) {
      out << "entry locksets (held at every in-unit call site):\n";
      header = true;
    }
    out << "  " << fn << ": {";
    for (std::size_t i = 0; i < locks.size(); ++i) {
      if (i != 0) out << ",";
      out << locks[i];
    }
    out << "}\n";
  }
  return out.str();
}

}  // namespace cbp::sa
