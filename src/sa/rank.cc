#include "sa/rank.h"

#include <algorithm>
#include <map>
#include <sstream>

namespace cbp::sa {
namespace {

/// Proximity window (lines) for matching an existing annotation to a
/// candidate site: trigger objects are constructed a few lines before
/// the access/acquisition they guard.
constexpr std::uint32_t kAnnotationWindow = 8;

const Annotation* nearby_annotation(const Candidate& c,
                                    const std::vector<UnitModel>& units) {
  for (const UnitModel& unit : units) {
    if (unit.name != c.unit) continue;
    for (const Annotation& ann : unit.annotations) {
      for (const SiteRef* site : {&c.site_a, &c.site_b}) {
        if (ann.site.file != site->file) continue;
        const std::uint32_t lo = std::min(ann.site.line, site->line);
        const std::uint32_t hi = std::max(ann.site.line, site->line);
        if (hi - lo <= kAnnotationWindow) return &ann;
      }
    }
  }
  return nullptr;
}

int score_candidate(const Candidate& c) {
  int score = 0;
  switch (c.kind) {
    case Candidate::Kind::kConflict:
      score = 100;
      if (c.a_is_write && c.b_is_write) score += 25;  // write/write first
      break;
    case Candidate::Kind::kDeadlock:
      score = 95;
      break;
    case Candidate::Kind::kAtomicity:
      score = 98;  // below an unguarded race, above a deadlock crossing
      break;
    case Candidate::Kind::kContention:
      score = 60;
      break;
  }
  // Fewer guarding/held locks first: an unguarded pair is the strongest
  // static signal.  (For deadlocks the crossing lock itself is expected
  // in each held set, and for atomicity candidates the spanning lock is
  // by construction in both; only extra locks count against the pair.)
  int guard_locks = static_cast<int>(c.locks_a.size() + c.locks_b.size());
  if ((c.kind == Candidate::Kind::kDeadlock ||
       c.kind == Candidate::Kind::kAtomicity) &&
      guard_locks >= 2) {
    guard_locks -= 2;
  }
  score -= 8 * guard_locks;
  if (c.site_a.file == c.site_b.file) score += 10;  // same-file boost
  if (!c.existing.empty()) score += 5;  // rediscovered a known bug
  return score;
}

std::string sanitize(std::string text) {
  for (char& c : text) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' ||
                    c == ':' || c == '-';
    if (!ok) c = '-';
  }
  // Collapse runs of '-' left by multi-char separators like " <-> ".
  std::string out;
  for (char c : text) {
    if (c == '-' && !out.empty() && out.back() == '-') continue;
    out += c;
  }
  return out;
}

std::string locks_str(const std::vector<std::string>& locks) {
  std::string out = "{";
  for (std::size_t i = 0; i < locks.size(); ++i) {
    if (i != 0) out += ",";
    out += locks[i];
  }
  return out + "}";
}

const char* rw(const Candidate& c, bool first) {
  if (c.kind != Candidate::Kind::kConflict &&
      c.kind != Candidate::Kind::kAtomicity) {
    return "-";
  }
  return (first ? c.a_is_write : c.b_is_write) ? "w" : "r";
}

/// Resolves an annotation's first-argument identifier (e.g. kRace1) to
/// the runtime breakpoint name it carries, via the unit's string-constant
/// table.  A literal argument is already the runtime name.
std::string resolve_runtime_name(const std::string& existing,
                                 const std::string& unit,
                                 const std::vector<UnitModel>& units) {
  if (existing.empty()) return "";
  for (const UnitModel& u : units) {
    if (u.name != unit) continue;
    const auto it = u.consts.find(existing);
    if (it != u.consts.end()) return it->second;
  }
  // String literals in annotations never look like identifiers with a
  // 'k' prefix; treat anything containing '-' or ' ' as already-literal.
  if (existing.find('-') != std::string::npos ||
      existing.find(' ') != std::string::npos) {
    return existing;
  }
  return "";
}

}  // namespace

void rank_candidates(std::vector<Candidate>& candidates,
                     const std::vector<UnitModel>& units) {
  for (Candidate& c : candidates) {
    if (const Annotation* ann = nearby_annotation(c, units)) {
      c.existing = ann->name;
      c.existing_runtime = resolve_runtime_name(c.existing, c.unit, units);
    }
    c.score = score_candidate(c);
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.score != b.score) return a.score > b.score;
              if (a.kind != b.kind) return a.kind < b.kind;
              if (!(a.site_a == b.site_a)) return a.site_a < b.site_a;
              if (!(a.site_b == b.site_b)) return a.site_b < b.site_b;
              return a.subject < b.subject;
            });
  std::map<std::string, int> used;
  for (Candidate& c : candidates) {
    std::string name = sanitize(
        "sa-" + kind_str(c.kind) + "-" + c.subject + "-" +
        c.site_a.basename() + "-" + std::to_string(c.site_a.line) + "-" +
        std::to_string(c.site_b.line));
    const int n = ++used[name];
    if (n > 1) name += "-" + std::to_string(n);
    c.spec_name = std::move(name);
  }
}

std::vector<detect::CandidateReport> to_reports(
    const std::vector<Candidate>& candidates) {
  std::vector<detect::CandidateReport> reports;
  reports.reserve(candidates.size());
  for (const Candidate& c : candidates) {
    detect::CandidateReport report;
    switch (c.kind) {
      case Candidate::Kind::kConflict:
        report.kind = detect::CandidateReport::Kind::kConflict;
        break;
      case Candidate::Kind::kContention:
        report.kind = detect::CandidateReport::Kind::kContention;
        break;
      case Candidate::Kind::kDeadlock:
        report.kind = detect::CandidateReport::Kind::kDeadlock;
        break;
      case Candidate::Kind::kAtomicity:
        report.kind = detect::CandidateReport::Kind::kAtomicity;
        break;
    }
    report.breakpoint = c.spec_name;
    report.subject = c.subject;
    report.file_a = c.site_a.file;
    report.line_a = c.site_a.line;
    report.a_is_write = c.a_is_write;
    report.file_b = c.site_b.file;
    report.line_b = c.site_b.line;
    report.b_is_write = c.b_is_write;
    report.score = c.score;
    report.existing = c.existing;
    reports.push_back(std::move(report));
  }
  return reports;
}

std::string render_report(const std::vector<Candidate>& candidates,
                          std::size_t top) {
  std::size_t conflicts = 0;
  std::size_t deadlocks = 0;
  std::size_t contentions = 0;
  std::size_t atomicities = 0;
  for (const Candidate& c : candidates) {
    switch (c.kind) {
      case Candidate::Kind::kConflict: ++conflicts; break;
      case Candidate::Kind::kDeadlock: ++deadlocks; break;
      case Candidate::Kind::kContention: ++contentions; break;
      case Candidate::Kind::kAtomicity: ++atomicities; break;
    }
  }
  std::ostringstream out;
  out << "cbp-sa: " << candidates.size() << " breakpoint candidate"
      << (candidates.size() == 1 ? "" : "s") << " (" << conflicts
      << " conflict, " << atomicities << " atomicity, " << deadlocks
      << " deadlock, " << contentions << " contention)\n";
  const std::vector<detect::CandidateReport> reports = to_reports(candidates);
  const std::size_t limit =
      top == 0 ? reports.size() : std::min(top, reports.size());
  for (std::size_t i = 0; i < limit; ++i) {
    const Candidate& c = candidates[i];
    out << "\n[" << (i + 1) << "] score=" << c.score << " unit=" << c.unit
        << " name=" << c.spec_name << "\n";
    out << reports[i].str() << "\n";
    out << "  locksets: " << locks_str(c.locks_a) << " / "
        << locks_str(c.locks_b) << "\n";
  }
  if (limit < reports.size()) {
    out << "\n(" << (reports.size() - limit) << " more not shown)\n";
  }
  return out.str();
}

std::string render_spec(const std::vector<Candidate>& candidates,
                        std::size_t top) {
  std::ostringstream out;
  out << "# cbp-sa statically mined breakpoint candidates\n"
      << "# load via BreakpointSpec::parse / install(); every entry is a\n"
      << "# candidate (l1, l2) pair — adjust pause/ignore_first/bound per\n"
      << "# breakpoint as with dynamically mined specs.\n";
  const std::size_t limit =
      top == 0 ? candidates.size() : std::min(top, candidates.size());
  for (std::size_t i = 0; i < limit; ++i) {
    const Candidate& c = candidates[i];
    out << "# candidate: " << kind_str(c.kind) << " '" << c.subject << "' "
        << c.site_a.str() << " <-> " << c.site_b.str()
        << " score=" << c.score << " unit=" << c.unit;
    if (!c.existing.empty()) out << " existing=" << c.existing;
    out << "\n" << c.spec_name << " from=static\n";
  }
  return out.str();
}

std::string render_list(const std::vector<Candidate>& candidates) {
  std::ostringstream out;
  for (const Candidate& c : candidates) {
    out << kind_str(c.kind) << " " << c.subject << " " << c.site_a.str()
        << ":" << rw(c, true) << " " << c.site_b.str() << ":" << rw(c, false)
        << " locks_a=" << locks_str(c.locks_a)
        << " locks_b=" << locks_str(c.locks_b) << " score=" << c.score
        << " unit=" << c.unit << "\n";
  }
  return out.str();
}

}  // namespace cbp::sa
