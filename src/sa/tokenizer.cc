#include "sa/tokenizer.h"

#include <cctype>

namespace cbp::sa {
namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  std::vector<Token> run() {
    std::vector<Token> out;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        line_start_ = true;
      } else if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        ++pos_;
      } else if (c == '/' && peek(1) == '/') {
        skip_to_eol();
      } else if (c == '/' && peek(1) == '*') {
        skip_block_comment();
        line_start_ = false;
      } else if (c == '#' && line_start_) {
        skip_preprocessor();
      } else {
        if (ident_start(c)) {
          lex_ident_or_raw_string(out);
        } else if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
          lex_number(out);
        } else if (c == '"') {
          lex_string(out, /*raw=*/false);
        } else if (c == '\'') {
          lex_char(out);
        } else {
          lex_punct(out);
        }
        line_start_ = false;
      }
    }
    return out;
  }

 private:
  [[nodiscard]] char peek(std::size_t ahead) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  void skip_to_eol() {
    while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
  }

  void skip_block_comment() {
    pos_ += 2;
    while (pos_ < src_.size()) {
      if (src_[pos_] == '*' && peek(1) == '/') {
        pos_ += 2;
        return;
      }
      if (src_[pos_] == '\n') ++line_;
      ++pos_;
    }
  }

  /// Skips a whole directive, honouring backslash-newline continuations
  /// (a multi-line #define stays invisible to the extractor).
  void skip_preprocessor() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\\' && peek(1) == '\n') {
        pos_ += 2;
        ++line_;
        continue;
      }
      if (c == '\n') return;  // the newline itself is handled by run()
      if (c == '/' && peek(1) == '*') {
        skip_block_comment();
        continue;
      }
      if (c == '/' && peek(1) == '/') {
        skip_to_eol();
        return;
      }
      ++pos_;
    }
  }

  void lex_ident_or_raw_string(std::vector<Token>& out) {
    const std::uint32_t line = line_;
    const std::size_t start = pos_;
    while (pos_ < src_.size() && ident_char(src_[pos_])) ++pos_;
    std::string text(src_.substr(start, pos_ - start));
    // Raw-string / encoded-string prefixes: R"( u8R"( LR"( u8"x" etc.
    if (pos_ < src_.size() && src_[pos_] == '"') {
      const bool raw = !text.empty() && text.back() == 'R';
      static constexpr std::string_view kPrefixes[] = {"R",  "u8R", "uR", "LR",
                                                       "u8", "u",   "L"};
      for (std::string_view p : kPrefixes) {
        if (text == p) {
          lex_string(out, raw);
          out.back().line = line;
          return;
        }
      }
    }
    out.push_back({TokKind::kIdent, std::move(text), line});
  }

  void lex_number(std::vector<Token>& out) {
    const std::uint32_t line = line_;
    const std::size_t start = pos_;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      // Digit separators (10'000) and exponent signs (1e-3) belong to
      // the literal; everything else ends it.
      if (ident_char(c) || c == '.' || c == '\'') {
        ++pos_;
      } else if ((c == '+' || c == '-') && pos_ > start) {
        const char prev = src_[pos_ - 1];
        if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
          ++pos_;
        } else {
          break;
        }
      } else {
        break;
      }
    }
    out.push_back(
        {TokKind::kNumber, std::string(src_.substr(start, pos_ - start)),
         line});
  }

  void lex_string(std::vector<Token>& out, bool raw) {
    const std::uint32_t line = line_;
    ++pos_;  // opening quote
    std::string text;
    if (raw) {
      // R"delim( ... )delim"
      std::string delim;
      while (pos_ < src_.size() && src_[pos_] != '(') delim += src_[pos_++];
      if (pos_ < src_.size()) ++pos_;  // '('
      const std::string closer = ")" + delim + "\"";
      const std::size_t end = src_.find(closer, pos_);
      const std::size_t stop = end == std::string_view::npos ? src_.size() : end;
      for (std::size_t i = pos_; i < stop; ++i) {
        if (src_[i] == '\n') ++line_;
        text += src_[i];
      }
      pos_ = stop == src_.size() ? stop : stop + closer.size();
    } else {
      while (pos_ < src_.size() && src_[pos_] != '"') {
        if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) {
          text += src_[pos_ + 1];
          pos_ += 2;
          continue;
        }
        if (src_[pos_] == '\n') { ++line_; }  // unterminated; keep going
        text += src_[pos_++];
      }
      if (pos_ < src_.size()) ++pos_;  // closing quote
    }
    out.push_back({TokKind::kString, std::move(text), line});
  }

  void lex_char(std::vector<Token>& out) {
    const std::uint32_t line = line_;
    ++pos_;  // opening quote
    std::string text;
    while (pos_ < src_.size() && src_[pos_] != '\'') {
      if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) {
        text += src_[pos_ + 1];
        pos_ += 2;
        continue;
      }
      if (src_[pos_] == '\n') break;  // malformed; bail at end of line
      text += src_[pos_++];
    }
    if (pos_ < src_.size() && src_[pos_] == '\'') ++pos_;
    out.push_back({TokKind::kChar, std::move(text), line});
  }

  void lex_punct(std::vector<Token>& out) {
    const std::uint32_t line = line_;
    const char c = src_[pos_];
    // Only the two sequences the extractor walks through receivers with
    // are fused; every other operator is fine as single characters.
    if (c == ':' && peek(1) == ':') {
      out.push_back({TokKind::kPunct, "::", line});
      pos_ += 2;
      return;
    }
    if (c == '-' && peek(1) == '>') {
      out.push_back({TokKind::kPunct, "->", line});
      pos_ += 2;
      return;
    }
    out.push_back({TokKind::kPunct, std::string(1, c), line});
    ++pos_;
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  std::uint32_t line_ = 1;
  /// True while nothing but whitespace has appeared on the current line.
  /// A '#' opens a preprocessor directive only at line start; tokens,
  /// block comments, and multi-line strings all clear the flag (the old
  /// last-token-line heuristic misread `/* note */ #define X` — and any
  /// '#' after a multi-line string or comment — as a directive).
  bool line_start_ = true;
};

}  // namespace

std::vector<Token> tokenize(std::string_view source) {
  return Lexer(source).run();
}

}  // namespace cbp::sa
