// Static lock-order-graph pass (Goodlock, without running the program).
//
// Every blocking acquisition of `wanted` with a non-empty held set adds
// edges held -> wanted, each carrying the acquisition site.  A crossed
// pair of edges (a -> b and b -> a) is a candidate DeadlockTrigger pair:
// the two sites are exactly the l1/l2 the dynamic LockOrderDetector
// would report after observing both orders at runtime.
#pragma once

#include <vector>

#include "sa/model.h"

namespace cbp::sa {

/// Crossed-lock (2-cycle) deadlock candidates for one unit.
std::vector<Candidate> lock_graph_pass(const UnitModel& model);

/// True if the unit's static lock-order graph has any directed cycle
/// (any length) — longer cycles are surfaced in the report summary even
/// though only 2-cycles become concrete breakpoint candidates.
bool lock_graph_has_cycle(const UnitModel& model);

}  // namespace cbp::sa
