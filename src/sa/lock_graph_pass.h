// Static lock-order-graph pass (Goodlock, without running the program).
//
// Every blocking acquisition of `wanted` with a non-empty held set adds
// edges held -> wanted, each carrying the acquisition site.  A crossed
// pair of edges (a -> b and b -> a) is a candidate DeadlockTrigger pair:
// the two sites are exactly the l1/l2 the dynamic LockOrderDetector
// would report after observing both orders at runtime.
#pragma once

#include <string>
#include <vector>

#include "sa/model.h"

namespace cbp::sa {

/// Crossed-lock (2-cycle) deadlock candidates for one unit.
std::vector<Candidate> lock_graph_pass(const UnitModel& model);

/// True if the unit's static lock-order graph has any directed cycle
/// (any length) — longer cycles are surfaced in the report summary even
/// though only 2-cycles become concrete breakpoint candidates.
bool lock_graph_has_cycle(const UnitModel& model);

/// All elementary cycles of the unit's lock-order graph, ranked (best
/// first): shorter cycles score higher (score = 100 - 10*(length-2)),
/// ties broken lexicographically by lock names.  Each cycle starts at
/// its lexicographically-smallest lock and carries a witness site chain
/// (sites[i] = where locks[(i+1)%n] is acquired while locks[i] is
/// held).  Capped at 64 cycles and length 8 per unit; recursive
/// self-acquisitions never form edges (see build_edges) so self-cycles
/// cannot appear.
std::vector<LockCycle> find_lock_cycles(const UnitModel& model);

/// Stable text rendering of ranked cycles (the `cbp-sa --deadlock`
/// output), one block per cycle with the witness chain.
std::string render_cycles(const std::vector<LockCycle>& cycles);

}  // namespace cbp::sa
