// Site extractor: token stream -> static access model.
//
// Walks the tokens of each file in an analysis unit with a brace-scope
// stack, recognizing the repo's instrumentation surface:
//
//   SharedVar<T> name            variable declaration (member or param)
//   name.read()/.write()         instrumented access (racy_update = both)
//   TrackedMutex name{"tag"}     mutex declaration
//   TrackedLock l(mu)            RAII acquisition, released at scope exit
//   mu.lock()/.lock_or_stall()   manual acquisition
//   mu.unlock() / l.unlock()     manual / early-alias release
//   cv.wait*(mu, ...)            condition wait under mu
//   CBP_* / *Trigger(name, ...)  existing breakpoint annotations
//
// The lockset at a site is the set of mutexes acquired in enclosing (or
// earlier-in-scope) positions and not yet released.  Manual locks that
// are never visibly released are force-released when their enclosing
// brace scope closes, so one unmatched lock() cannot poison the lockset
// of the rest of the file (functions are not tracked explicitly; brace
// scopes bound every lockset conservatively).
#pragma once

#include <string>
#include <vector>

#include "sa/model.h"
#include "sa/tokenizer.h"

namespace cbp::sa {

/// One source file handed to the extractor.
struct SourceFile {
  std::string path;
  std::string content;
};

/// Builds the access model for one analysis unit.  Files are processed
/// independently (scope state resets per file) into one merged model.
UnitModel extract_unit(std::string unit_name,
                       const std::vector<SourceFile>& files);

}  // namespace cbp::sa
