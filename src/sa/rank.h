// Ranking pass and emitters.
//
// Ranking encodes the paper's triage intuition: write/write pairs above
// write/read, fewer guarding locks first (an unguarded pair is the
// strongest static signal), same-file pairs boosted (cheapest for a
// human to inspect), with a small bonus when an already-inserted
// breakpoint annotation sits next to a site (the analyzer rediscovered a
// known bug — useful as a self-check signal).
//
// Emitters produce the three output shapes:
//   * render_report — human-readable, detect/reports.h CandidateReport
//     style (the same contract dynamic detector reports use);
//   * render_spec   — a machine-readable candidate spec: `# candidate:`
//     provenance comments plus `<name> from=static` entries, parseable
//     by BreakpointSpec::parse and loadable into the engine unchanged;
//   * render_list   — one stable line per candidate, the golden-file /
//     CI self-lint format.
#pragma once

#include <string>
#include <vector>

#include "detect/reports.h"
#include "sa/model.h"

namespace cbp::sa {

/// Scores, sorts (best first, deterministic tiebreaks), and assigns
/// unique spec names to `candidates`.
void rank_candidates(std::vector<Candidate>& candidates,
                     const std::vector<UnitModel>& units);

/// Converts ranked candidates into report structs (reports.h shape).
std::vector<detect::CandidateReport> to_reports(
    const std::vector<Candidate>& candidates);

/// Human-readable report of the top `top` candidates (0 = all).
std::string render_report(const std::vector<Candidate>& candidates,
                          std::size_t top);

/// Breakpoint spec text for the top `top` candidates (0 = all).
std::string render_spec(const std::vector<Candidate>& candidates,
                        std::size_t top);

/// Machine-readable candidate list, one line per candidate (golden-file
/// format; byte-stable across runs for identical input).
std::string render_list(const std::vector<Candidate>& candidates);

}  // namespace cbp::sa
