#include "sa/atomicity_pass.h"

#include <set>
#include <string>

namespace cbp::sa {
namespace {

/// Token of the acquisition instance of `mutex` active at the access,
/// or 0 when the mutex is not held there.  Inherited holds return -1.
int hold_token(const Access& access, const std::string& mutex) {
  for (const HeldLock& held : access.holds) {
    if (held.mutex == mutex) return held.token;
  }
  return 0;
}

}  // namespace

std::vector<Candidate> atomicity_pass(const UnitModel& model) {
  std::vector<Candidate> out;
  std::set<std::string> seen;
  for (std::size_t i = 0; i < model.accesses.size(); ++i) {
    const Access& read = model.accesses[i];
    if (read.is_write || read.function.empty()) continue;
    for (std::size_t j = 0; j < model.accesses.size(); ++j) {
      const Access& write = model.accesses[j];
      if (!write.is_write) continue;
      if (write.var != read.var || write.function != read.function) continue;
      if (write.site.file != read.site.file) continue;
      if (write.site.line <= read.site.line) continue;  // read feeds write
      // The spanning mutex: held at both sites, by different local
      // acquisition instances (released and re-taken in between).
      std::string spanning;
      for (const std::string& mutex : read.lockset) {
        const int t_read = hold_token(read, mutex);
        const int t_write = hold_token(write, mutex);
        if (t_read > 0 && t_write > 0 && t_read != t_write) {
          spanning = mutex;
          break;
        }
      }
      if (spanning.empty()) continue;
      const std::string key = read.var + "|" + read.site.str() + "|" +
                              write.site.str();
      if (!seen.insert(key).second) continue;
      Candidate c;
      c.kind = Candidate::Kind::kAtomicity;
      c.unit = model.name;
      c.subject = read.var;
      c.site_a = read.site;
      c.site_b = write.site;
      c.a_is_write = false;
      c.b_is_write = true;
      c.locks_a = read.lockset;
      c.locks_b = write.lockset;
      c.mutex_a = spanning;
      c.mutex_b = spanning;
      out.push_back(std::move(c));
    }
  }
  return out;
}

}  // namespace cbp::sa
