#include "sa/lock_graph_pass.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <sstream>
#include <string>

namespace cbp::sa {
namespace {

struct Edge {
  std::string held;
  std::string wanted;
  SiteRef site;                    ///< where `wanted` is acquired
  std::vector<std::string> all_held;  ///< full held set at the site
};

std::vector<Edge> build_edges(const UnitModel& model) {
  std::vector<Edge> edges;
  for (const Acquire& acquire : model.acquires) {
    if (!acquire.blocking) continue;  // try_lock cannot deadlock
    for (const std::string& held : acquire.held) {
      if (held == acquire.mutex) continue;
      edges.push_back(Edge{held, acquire.mutex, acquire.site, acquire.held});
    }
  }
  return edges;
}

}  // namespace

std::vector<Candidate> lock_graph_pass(const UnitModel& model) {
  const std::vector<Edge> edges = build_edges(model);
  std::vector<Candidate> out;
  std::set<std::string> seen;
  for (std::size_t i = 0; i < edges.size(); ++i) {
    for (std::size_t j = 0; j < edges.size(); ++j) {
      const Edge& ab = edges[i];
      const Edge& ba = edges[j];
      if (ab.held != ba.wanted || ab.wanted != ba.held) continue;
      if (ab.held >= ab.wanted) continue;  // emit each crossing once (a < b)
      const std::string key = ab.site.str() + "|" + ba.site.str();
      if (!seen.insert(key).second) continue;
      Candidate c;
      c.kind = Candidate::Kind::kDeadlock;
      c.unit = model.name;
      c.subject = model.mutex_display(ab.held) + " <-> " +
                  model.mutex_display(ab.wanted);
      // site_a: acquiring `wanted` while holding `held`; site_b: the
      // opposite crossing — the two legs of the paper's §5 report.
      c.site_a = ab.site;
      c.site_b = ba.site;
      c.mutex_a = ab.wanted;
      c.mutex_b = ba.wanted;
      c.locks_a = ab.all_held;
      c.locks_b = ba.all_held;
      out.push_back(std::move(c));
    }
  }
  return out;
}

std::vector<LockCycle> find_lock_cycles(const UnitModel& model) {
  constexpr std::size_t kMaxLength = 8;
  constexpr std::size_t kMaxCycles = 64;

  // Dedup parallel edges: keep the earliest witness site per (held ->
  // wanted) pair, then index by source for the DFS.
  std::map<std::pair<std::string, std::string>, SiteRef> witness;
  for (const Edge& edge : build_edges(model)) {
    const auto key = std::make_pair(edge.held, edge.wanted);
    const auto it = witness.find(key);
    if (it == witness.end() || edge.site < it->second) witness[key] = edge.site;
  }
  std::map<std::string, std::vector<std::string>> adj;
  for (const auto& [key, unused] : witness) {
    (void)unused;
    adj[key.first].push_back(key.second);
  }

  // Elementary cycles, each enumerated exactly once: DFS from every
  // start node visiting only nodes >= start, so the recorded cycle
  // begins at its lexicographically-smallest lock.
  std::vector<LockCycle> cycles;
  std::vector<std::string> path;
  std::set<std::string> on_path;
  const std::function<void(const std::string&, const std::string&)> dfs =
      [&](const std::string& start, const std::string& node) {
        if (cycles.size() >= kMaxCycles) return;
        const auto it = adj.find(node);
        if (it == adj.end()) return;
        for (const std::string& next : it->second) {
          if (cycles.size() >= kMaxCycles) return;
          if (next == start && path.size() >= 2) {
            LockCycle cycle;
            cycle.unit = model.name;
            cycle.locks = path;
            for (std::size_t i = 0; i < path.size(); ++i) {
              cycle.displays.push_back(model.mutex_display(path[i]));
              cycle.sites.push_back(
                  witness.at({path[i], path[(i + 1) % path.size()]}));
            }
            cycle.score = 100 - 10 * (static_cast<int>(path.size()) - 2);
            cycles.push_back(std::move(cycle));
            continue;
          }
          if (next <= start || on_path.count(next) != 0) continue;
          if (path.size() >= kMaxLength) continue;
          path.push_back(next);
          on_path.insert(next);
          dfs(start, next);
          on_path.erase(next);
          path.pop_back();
        }
      };
  for (const auto& [start, unused] : adj) {
    (void)unused;
    path = {start};
    on_path = {start};
    dfs(start, start);
  }

  std::sort(cycles.begin(), cycles.end(),
            [](const LockCycle& a, const LockCycle& b) {
              if (a.score != b.score) return a.score > b.score;
              if (a.locks != b.locks) return a.locks < b.locks;
              return a.sites < b.sites;
            });
  return cycles;
}

std::string render_cycles(const std::vector<LockCycle>& cycles) {
  std::ostringstream out;
  out << "cbp-sa: " << cycles.size() << " lock-order cycle"
      << (cycles.size() == 1 ? "" : "s") << "\n";
  for (std::size_t i = 0; i < cycles.size(); ++i) {
    const LockCycle& c = cycles[i];
    out << "\n[" << (i + 1) << "] score=" << c.score << " unit=" << c.unit
        << " length=" << c.length() << "\n  cycle:";
    for (std::size_t j = 0; j < c.displays.size(); ++j) {
      out << (j == 0 ? " " : " -> ") << c.displays[j];
    }
    out << " -> " << c.displays.front() << "\n";
    for (std::size_t j = 0; j < c.locks.size(); ++j) {
      out << "  hold " << c.displays[j] << ", acquire "
          << c.displays[(j + 1) % c.locks.size()] << " at " << c.sites[j].str()
          << "\n";
    }
  }
  return out.str();
}

bool lock_graph_has_cycle(const UnitModel& model) {
  std::map<std::string, std::set<std::string>> graph;
  for (const Edge& edge : build_edges(model)) {
    graph[edge.held].insert(edge.wanted);
  }
  // Iterative DFS with colouring.
  std::map<std::string, int> colour;  // 0 white, 1 grey, 2 black
  for (const auto& [start, unused] : graph) {
    (void)unused;
    if (colour[start] != 0) continue;
    std::vector<std::pair<std::string, bool>> stack{{start, false}};
    while (!stack.empty()) {
      auto [node, done] = stack.back();
      stack.pop_back();
      if (done) {
        colour[node] = 2;
        continue;
      }
      if (colour[node] != 0) continue;
      colour[node] = 1;
      stack.push_back({node, true});
      for (const std::string& next : graph[node]) {
        if (colour[next] == 1) return true;
        if (colour[next] == 0) stack.push_back({next, false});
      }
    }
  }
  return false;
}

}  // namespace cbp::sa
