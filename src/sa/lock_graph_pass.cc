#include "sa/lock_graph_pass.h"

#include <map>
#include <set>
#include <string>

namespace cbp::sa {
namespace {

struct Edge {
  std::string held;
  std::string wanted;
  SiteRef site;                    ///< where `wanted` is acquired
  std::vector<std::string> all_held;  ///< full held set at the site
};

std::vector<Edge> build_edges(const UnitModel& model) {
  std::vector<Edge> edges;
  for (const Acquire& acquire : model.acquires) {
    if (!acquire.blocking) continue;  // try_lock cannot deadlock
    for (const std::string& held : acquire.held) {
      if (held == acquire.mutex) continue;
      edges.push_back(Edge{held, acquire.mutex, acquire.site, acquire.held});
    }
  }
  return edges;
}

}  // namespace

std::vector<Candidate> lock_graph_pass(const UnitModel& model) {
  const std::vector<Edge> edges = build_edges(model);
  std::vector<Candidate> out;
  std::set<std::string> seen;
  for (std::size_t i = 0; i < edges.size(); ++i) {
    for (std::size_t j = 0; j < edges.size(); ++j) {
      const Edge& ab = edges[i];
      const Edge& ba = edges[j];
      if (ab.held != ba.wanted || ab.wanted != ba.held) continue;
      if (ab.held >= ab.wanted) continue;  // emit each crossing once (a < b)
      const std::string key = ab.site.str() + "|" + ba.site.str();
      if (!seen.insert(key).second) continue;
      Candidate c;
      c.kind = Candidate::Kind::kDeadlock;
      c.unit = model.name;
      c.subject = model.mutex_display(ab.held) + " <-> " +
                  model.mutex_display(ab.wanted);
      // site_a: acquiring `wanted` while holding `held`; site_b: the
      // opposite crossing — the two legs of the paper's §5 report.
      c.site_a = ab.site;
      c.site_b = ba.site;
      c.mutex_a = ab.wanted;
      c.mutex_b = ba.wanted;
      c.locks_a = ab.all_held;
      c.locks_b = ba.all_held;
      out.push_back(std::move(c));
    }
  }
  return out;
}

bool lock_graph_has_cycle(const UnitModel& model) {
  std::map<std::string, std::set<std::string>> graph;
  for (const Edge& edge : build_edges(model)) {
    graph[edge.held].insert(edge.wanted);
  }
  // Iterative DFS with colouring.
  std::map<std::string, int> colour;  // 0 white, 1 grey, 2 black
  for (const auto& [start, unused] : graph) {
    (void)unused;
    if (colour[start] != 0) continue;
    std::vector<std::pair<std::string, bool>> stack{{start, false}};
    while (!stack.empty()) {
      auto [node, done] = stack.back();
      stack.pop_back();
      if (done) {
        colour[node] = 2;
        continue;
      }
      if (colour[node] != 0) continue;
      colour[node] = 1;
      stack.push_back({node, true});
      for (const std::string& next : graph[node]) {
        if (colour[next] == 1) return true;
        if (colour[next] == 0) stack.push_back({next, false});
      }
    }
  }
  return false;
}

}  // namespace cbp::sa
