// Baseline comparison (paper §7 / related work): how reliably does each
// schedule-perturbation technique reproduce a known bug, at what cost?
//
//   * stress       — plain re-execution (the natural rate)
//   * ConTest-like — random noise at instrumented accesses/locks
//   * PCT-lite     — priority-based scheduling noise
//   * BTRIGGER     — the concurrent breakpoint for the bug
//
// Subjects: the StringBuffer atomicity violation and the pbzip2 crash.
// The paper's claim being checked: breakpoints reach ~1.0 reliability,
// while random perturbation finds the schedule only occasionally.

#include <cstdio>
#include <iostream>

#include "apps/compress/pbzip2.h"
#include "apps/strbuf/string_buffer.h"
#include "bench_util.h"
#include "fuzz/noise.h"
#include "fuzz/pct.h"
#include "harness/experiment.h"
#include "instrument/hub.h"

namespace {

using namespace cbp;

harness::RepeatedResult run_with_listener(const harness::Runner& runner,
                                          apps::RunOptions options, int runs,
                                          instr::Listener* listener) {
  if (listener == nullptr) {
    return harness::run_repeated(runner, options, runs);
  }
  instr::ScopedListener registration(*listener);
  return harness::run_repeated(runner, options, runs);
}

void bench_subject(harness::TextTable& table, const std::string& name,
                   const harness::Runner& runner, int runs) {
  apps::RunOptions options;
  options.pause = std::chrono::milliseconds(100);
  options.stall_after = std::chrono::milliseconds(4000);

  // stress: no breakpoints, no perturbation.
  apps::RunOptions plain = options;
  plain.breakpoints = false;
  const auto stress = harness::run_repeated(runner, plain, runs);
  table.add_row({name, "stress", harness::fmt_prob(stress.bug_probability()),
                 harness::fmt_seconds(stress.mean_runtime_s)});

  // ConTest-like noise.
  {
    fuzz::NoiseOptions noise_options;
    noise_options.probability = 0.25;
    noise_options.min_sleep = std::chrono::microseconds(50);
    noise_options.max_sleep = std::chrono::microseconds(2000);
    fuzz::NoiseInjector injector(noise_options);
    const auto noise =
        run_with_listener(runner, plain, runs, &injector);
    table.add_row({name, "noise (ConTest-like)",
                   harness::fmt_prob(noise.bug_probability()),
                   harness::fmt_seconds(noise.mean_runtime_s)});
  }

  // PCT-lite.
  {
    fuzz::PctOptions pct_options;
    pct_options.depth = 3;
    pct_options.delay_unit = std::chrono::microseconds(300);
    fuzz::PctLiteScheduler scheduler(pct_options);
    const auto pct = run_with_listener(runner, plain, runs, &scheduler);
    table.add_row({name, "PCT-lite",
                   harness::fmt_prob(pct.bug_probability()),
                   harness::fmt_seconds(pct.mean_runtime_s)});
  }

  // BTRIGGER.
  apps::RunOptions armed = options;
  armed.breakpoints = true;
  const auto btrigger = harness::run_repeated(runner, armed, runs);
  table.add_row({name, "BTRIGGER",
                 harness::fmt_prob(btrigger.bug_probability()),
                 harness::fmt_seconds(btrigger.mean_runtime_s)});
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Baselines: reproducing a known bug by schedule "
              "perturbation ===\n");
  const auto config = bench::setup(argc, argv, /*default_runs=*/40);

  harness::TextTable table({"Subject", "Technique", "P(bug)", "Mean run(s)"});
  bench_subject(table, "stringbuffer atomicity1",
                apps::strbuf::run_atomicity1, config.runs);
  bench_subject(table, "pbzip2 crash", apps::compress::run_crash,
                config.runs);
  table.print(std::cout);
  std::printf("\nShape to check: stress ~0, random perturbation sporadic, "
              "BTRIGGER ~1.0 — reproducibility needs the breakpoint, not "
              "more noise.\n");
  return 0;
}
