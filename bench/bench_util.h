// Shared setup for the experiment benches: scales the paper's nominal
// pause times down so the full evaluation runs in seconds, and parses
// the optional CLI overrides  <runs> <time_scale>.
#pragma once

#include <cstdio>
#include <cstdlib>

#include "core/cbp.h"
#include "runtime/clock.h"

namespace cbp::bench {

struct BenchConfig {
  int runs = 30;            ///< per-configuration repetitions
  double time_scale = 0.02; ///< nominal 100 ms pause -> 2 ms
};

inline BenchConfig setup(int argc, char** argv, int default_runs = 30,
                         double default_scale = 0.02) {
  BenchConfig config;
  config.runs = default_runs;
  config.time_scale = default_scale;
  if (argc > 1) config.runs = std::atoi(argv[1]);
  if (argc > 2) config.time_scale = std::atof(argv[2]);
  rt::TimeScale::set(config.time_scale);
  Config::set_enabled(true);
  Config::set_order_delay(std::chrono::microseconds(200));
  Config::set_guard_wait_cap(std::chrono::milliseconds(2000));
  std::printf("(runs=%d per configuration, time_scale=%.3f: the paper's "
              "nominal waits run %.0fx faster)\n\n",
              config.runs, config.time_scale, 1.0 / config.time_scale);
  return config;
}

}  // namespace cbp::bench
