// Shared setup for the experiment benches: scales the paper's nominal
// pause times down so the full evaluation runs in seconds, and parses
// the optional CLI overrides
//   <runs> <time_scale> [--json <path>] [--trial-jobs=N] [--clock=MODE]
//
// --trial-jobs=N routes every repeated-trial measurement through the
// parallel scheduler (harness::run_repeated_parallel): N workers, each
// with a private engine, deterministic base+i seeds.  Default 1 keeps
// the historical serial behaviour.  The trial workloads are dominated by
// nominal pauses (scaled sleeps), so trials overlap profitably even
// beyond the core count.
//
// --clock=real|scaled|virtual picks the trial timing policy (DESIGN.md
// §5g).  `scaled` is the historical default (kernel waits multiplied by
// <time_scale>); `virtual` runs every trial under a per-trial
// discrete-event clock where nominal waits are free — the bench then
// *ignores* <time_scale> and runs at the paper's nominal values (scale
// 1.0), because scaling exists only to make kernel waits affordable;
// `real` pins the scale at 1.0 with kernel waits (the paper's actual
// cost, for calibration runs).
//
// With --json <path>, a bench appends rows to a JsonReport and writes a
// machine-readable summary on exit, so successive runs form a perf
// trajectory (see BENCH_micro.json at the repo root for the micro
// benches' schema).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "core/cbp.h"
#include "runtime/clock.h"

namespace cbp::bench {

struct BenchConfig {
  int runs = 30;            ///< per-configuration repetitions
  double time_scale = 0.02; ///< nominal 100 ms pause -> 2 ms
  std::string json_path;    ///< empty = no JSON output
  int jobs = 1;             ///< parallel trial workers (1 = serial)
  rt::ClockMode clock = rt::ClockMode::kScaled;  ///< trial timing policy

  /// Short name for table/report labels ("real", "scaled", "virtual").
  [[nodiscard]] const char* clock_name() const {
    switch (clock) {
      case rt::ClockMode::kReal: return "real";
      case rt::ClockMode::kVirtual: return "virtual";
      case rt::ClockMode::kScaled: break;
    }
    return "scaled";
  }
};

/// Accumulates (name, threads, value, unit) rows and writes them as one
/// JSON document.  Values are ns/op, probabilities, seconds — the `unit`
/// string says which.  Write happens in flush() (or the destructor).
class JsonReport {
 public:
  JsonReport(std::string bench_name, double time_scale)
      : bench_name_(std::move(bench_name)), time_scale_(time_scale) {}

  void add(const std::string& name, int threads, double value,
           const std::string& unit) {
    rows_.push_back({name, threads, value, unit});
  }

  /// Writes the report; returns false (and prints a warning) on I/O error.
  bool flush(const std::string& path) const {
    if (path.empty()) return true;
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "warning: cannot write JSON report to %s\n",
                   path.c_str());
      return false;
    }
    out << "{\n  \"bench\": \"" << bench_name_ << "\",\n"
        << "  \"time_scale\": " << time_scale_ << ",\n"
        << "  \"results\": [\n";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const Row& row = rows_[i];
      out << "    {\"name\": \"" << row.name << "\", \"threads\": "
          << row.threads << ", \"value\": " << row.value << ", \"unit\": \""
          << row.unit << "\"}" << (i + 1 < rows_.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    return static_cast<bool>(out);
  }

 private:
  struct Row {
    std::string name;
    int threads = 1;
    double value = 0.0;
    std::string unit;
  };

  std::string bench_name_;
  double time_scale_ = 1.0;
  std::vector<Row> rows_;
};

/// Prints the shared usage line and exits with status 2 (the same hard
/// failure take_clock_flag has always used for a bad mode: a mistyped
/// invocation must never silently run a different experiment).
[[noreturn]] inline void usage_error(const char* program,
                                     const char* message) {
  std::fprintf(stderr,
               "error: %s\nusage: %s [<runs> <time_scale>] [--json <path>] "
               "[--trial-jobs=N] [--clock=real|scaled|virtual]\n",
               message, program);
  std::exit(2);
}

/// Extracts `--json <path>` from argv (compacting it away so positional
/// parsing still works) and returns the path, or "" if absent.  A
/// trailing `--json` with no path is a usage error, not a silently
/// ignored flag (it used to leave the caller without the report it
/// asked for).
inline std::string take_json_flag(int& argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      if (i + 1 >= argc) {
        usage_error(argv[0], "--json requires a path argument");
      }
      std::string path = argv[i + 1];
      for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
      argc -= 2;
      return path;
    }
  }
  return {};
}

/// Extracts `--trial-jobs=N` (or `--trial-jobs N`) from argv; returns N
/// clamped to >= 1, or 1 if absent.  A trailing `--trial-jobs` with no
/// value is a usage error (it used to fall through as a positional and
/// be parsed as runs=0).
inline int take_jobs_flag(int& argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    int consumed = 0;
    int jobs = 0;
    if (std::strncmp(argv[i], "--trial-jobs=", 13) == 0) {
      jobs = std::atoi(argv[i] + 13);
      consumed = 1;
    } else if (std::strcmp(argv[i], "--trial-jobs") == 0) {
      if (i + 1 >= argc) {
        usage_error(argv[0], "--trial-jobs requires a value");
      }
      jobs = std::atoi(argv[i + 1]);
      consumed = 2;
    }
    if (consumed > 0) {
      for (int j = i; j + consumed < argc; ++j) argv[j] = argv[j + consumed];
      argc -= consumed;
      return jobs < 1 ? 1 : jobs;
    }
  }
  return 1;
}

/// Extracts `--clock=MODE` (or `--clock MODE`) from argv; MODE is one of
/// real | scaled | virtual.  Unknown modes abort with a usage message
/// rather than silently falling back to a different timing policy.
inline rt::ClockMode take_clock_flag(int& argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const char* value = nullptr;
    int consumed = 0;
    if (std::strncmp(argv[i], "--clock=", 8) == 0) {
      value = argv[i] + 8;
      consumed = 1;
    } else if (std::strcmp(argv[i], "--clock") == 0) {
      if (i + 1 >= argc) usage_error(argv[0], "--clock requires a mode");
      value = argv[i + 1];
      consumed = 2;
    }
    if (consumed > 0) {
      for (int j = i; j + consumed < argc; ++j) argv[j] = argv[j + consumed];
      argc -= consumed;
      if (std::strcmp(value, "real") == 0) return rt::ClockMode::kReal;
      if (std::strcmp(value, "scaled") == 0) return rt::ClockMode::kScaled;
      if (std::strcmp(value, "virtual") == 0) return rt::ClockMode::kVirtual;
      std::fprintf(stderr,
                   "error: --clock=%s (expected real|scaled|virtual)\n",
                   value);
      std::exit(2);
    }
  }
  return rt::ClockMode::kScaled;
}

inline BenchConfig setup(int argc, char** argv, int default_runs = 30,
                         double default_scale = 0.02) {
  BenchConfig config;
  config.runs = default_runs;
  config.time_scale = default_scale;
  config.json_path = take_json_flag(argc, argv);
  config.jobs = take_jobs_flag(argc, argv);
  config.clock = take_clock_flag(argc, argv);
  // Positional overrides are validated like the flags: a non-numeric or
  // non-positive value is a usage error (raw atoi/atof used to turn a
  // typo like `bench_table2 -runs` into runs=0, i.e. an empty run that
  // "passed").
  if (argc > 1) {
    char* end = nullptr;
    const long runs = std::strtol(argv[1], &end, 10);
    if (end == argv[1] || *end != '\0' || runs <= 0) {
      usage_error(argv[0], "<runs> must be a positive integer");
    }
    config.runs = static_cast<int>(runs);
  }
  if (argc > 2) {
    char* end = nullptr;
    const double scale = std::strtod(argv[2], &end);
    if (end == argv[2] || *end != '\0' || !(scale > 0.0)) {
      usage_error(argv[0], "<time_scale> must be a positive number");
    }
    config.time_scale = scale;
  }
  if (argc > 3) usage_error(argv[0], "unexpected extra arguments");
  if (config.clock != rt::ClockMode::kScaled) {
    // real: kernel waits at the paper's nominal values by definition.
    // virtual: waits are free, so there is nothing for scaling to
    // amortize — run the actual nominal values and measure those.
    config.time_scale = 1.0;
  }
  rt::TimeScale::set(config.time_scale);
  Config::set_enabled(true);
  Config::set_order_delay(std::chrono::microseconds(200));
  Config::set_guard_wait_cap(std::chrono::milliseconds(2000));
  std::printf("(runs=%d per configuration, clock=%s, time_scale=%.3f: the "
              "paper's nominal waits run %.0fx faster; trial-jobs=%d%s)\n\n",
              config.runs, config.clock_name(), config.time_scale,
              1.0 / config.time_scale, config.jobs,
              config.jobs > 1 ? " — parallel trials" : "");
  return config;
}

}  // namespace cbp::bench
