// Micro-benchmarks (google-benchmark) backing the paper's "light-weight"
// claim (§1, §4): the cost of a breakpoint call in each regime, the cost
// of the instrumentation layer, and — the part that matters for always-on
// deployment — how those costs scale when k threads hammer the same hot
// paths concurrently.
//
//   * disabled breakpoints are a few nanoseconds (runtime switch);
//   * spec-disabled breakpoints stay lock-free: interned-name fast path;
//   * a local-predicate reject never enters the engine's slow path;
//   * an unmatched arrival costs its postponement (dominated by T);
//   * a matched pair costs the rendezvous + ordering delay;
//   * SharedVar / TrackedMutex add only the hub check when no analysis
//     listener is attached, and the hub's RCU dispatch keeps listener
//     fan-out off any mutex;
//   * detector-attached accesses exercise the striped Eraser/FastTrack
//     state under contention.
//
// Multi-threaded variants use google-benchmark's ->Threads(k): flat
// ns/op as k grows means the path has no serialization point.
//
// Usage: bench_micro_overhead [--json <path>] [google-benchmark flags]
// With --json, a compact {name, threads, ns_per_op} summary is written
// (the committed BENCH_micro.json is produced this way).

#include <benchmark/benchmark.h>

#include <cstring>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/cbp.h"
#include "detect/eraser.h"
#include "detect/fasttrack.h"
#include "instrument/shared_var.h"
#include "instrument/tracked_mutex.h"
#include "obs/trace.h"
#include "runtime/clock.h"
#include "runtime/latch.h"

namespace {

using namespace cbp;

constexpr int kMaxThreads = 4;

// ---------------------------------------------------------------------------
// Trigger regimes
// ---------------------------------------------------------------------------

void BM_TriggerDisabled(benchmark::State& state) {
  if (state.thread_index() == 0) Config::set_enabled(false);
  int obj = 0;
  for (auto _ : state) {
    ConflictTrigger trigger("micro-disabled", &obj);
    benchmark::DoNotOptimize(
        trigger.trigger_here(true, std::chrono::milliseconds(100)));
  }
  if (state.thread_index() == 0) Config::set_enabled(true);
}
BENCHMARK(BM_TriggerDisabled)->ThreadRange(1, kMaxThreads);

void BM_TriggerSpecDisabled(benchmark::State& state) {
  // Disabled via an installed spec override rather than the global
  // switch: the per-call cost is the interned-name lookup plus one
  // atomic load of the override — no mutex, no allocation.
  if (state.thread_index() == 0) {
    Config::set_enabled(true);
    Engine::instance().reset();
    BreakpointSpec::parse("micro-specoff off").install();
  }
  int obj = 0;
  for (auto _ : state) {
    ConflictTrigger trigger("micro-specoff", &obj);
    benchmark::DoNotOptimize(
        trigger.trigger_here(true, std::chrono::milliseconds(100)));
  }
  if (state.thread_index() == 0) {
    BreakpointSpec::clear_installed();
    Engine::instance().reset();
  }
}
BENCHMARK(BM_TriggerSpecDisabled)->ThreadRange(1, kMaxThreads);

void BM_TriggerSpecDisabledCachedTrigger(benchmark::State& state) {
  // Same regime, but the trigger object lives across iterations, so the
  // name is interned exactly once and every call is pure pointer
  // chasing: the steady-state cost for a long-lived instrumented site.
  if (state.thread_index() == 0) {
    Config::set_enabled(true);
    Engine::instance().reset();
    BreakpointSpec::parse("micro-specoff-cached off").install();
  }
  int obj = 0;
  ConflictTrigger trigger("micro-specoff-cached", &obj);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        trigger.trigger_here(true, std::chrono::milliseconds(100)));
  }
  if (state.thread_index() == 0) {
    BreakpointSpec::clear_installed();
    Engine::instance().reset();
  }
}
BENCHMARK(BM_TriggerSpecDisabledCachedTrigger)->ThreadRange(1, kMaxThreads);

void BM_TriggerLocalReject(benchmark::State& state) {
  if (state.thread_index() == 0) {
    Config::set_enabled(true);
    Engine::instance().reset();
  }
  PredicateTrigger trigger(
      "micro-reject", [] { return false; },
      [](const BTrigger&) { return true; });
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        trigger.trigger_here(true, std::chrono::milliseconds(100)));
  }
  if (state.thread_index() == 0) Engine::instance().reset();
}
BENCHMARK(BM_TriggerLocalReject)->ThreadRange(1, kMaxThreads);

void BM_TriggerLocalRejectDistinctNames(benchmark::State& state) {
  // Each thread rejects on its own breakpoint name: with per-name slots
  // behind the interned table this must scale perfectly (no shared
  // mutable state at all between the threads).
  if (state.thread_index() == 0) {
    Config::set_enabled(true);
    Engine::instance().reset();
  }
  PredicateTrigger trigger(
      "micro-reject-t" + std::to_string(state.thread_index()),
      [] { return false; }, [](const BTrigger&) { return true; });
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        trigger.trigger_here(true, std::chrono::milliseconds(100)));
  }
  if (state.thread_index() == 0) Engine::instance().reset();
}
BENCHMARK(BM_TriggerLocalRejectDistinctNames)->ThreadRange(1, kMaxThreads);

void BM_TriggerBoundedOut(benchmark::State& state) {
  // After the bound is exhausted the call is a counter check.
  if (state.thread_index() == 0) {
    Config::set_enabled(true);
    Engine::instance().reset();
  }
  int obj = 0;
  for (auto _ : state) {
    ConflictTrigger trigger("micro-bounded", &obj);
    trigger.bound(0);
    benchmark::DoNotOptimize(
        trigger.trigger_here(true, std::chrono::milliseconds(100)));
  }
  if (state.thread_index() == 0) Engine::instance().reset();
}
BENCHMARK(BM_TriggerBoundedOut)->ThreadRange(1, kMaxThreads);

void BM_TriggerUnmatchedTimeout(benchmark::State& state) {
  // Dominated by the postponement itself; measured at T = the range arg.
  Config::set_enabled(true);
  Engine::instance().reset();
  int obj = 0;
  const auto timeout = std::chrono::microseconds(state.range(0));
  for (auto _ : state) {
    ConflictTrigger trigger("micro-timeout", &obj);
    benchmark::DoNotOptimize(trigger.trigger_here(
        true, std::chrono::duration_cast<std::chrono::milliseconds>(
                  std::chrono::microseconds(timeout))));
  }
  Engine::instance().reset();
}
BENCHMARK(BM_TriggerUnmatchedTimeout)->Arg(1000)->Arg(5000);

void BM_TriggerMatchedPair(benchmark::State& state) {
  // Two threads rendezvous per iteration: measures hit + ordering cost.
  Config::set_enabled(true);
  Config::set_order_delay(std::chrono::microseconds(50));
  Engine::instance().reset();
  rt::TimeScale::set(1.0);
  int obj = 0;
  std::atomic<bool> stop{false};
  std::thread peer([&] {
    while (!stop.load(std::memory_order_acquire)) {
      ConflictTrigger trigger("micro-pair", &obj);
      (void)trigger.trigger_here(false, std::chrono::milliseconds(50));
    }
  });
  for (auto _ : state) {
    ConflictTrigger trigger("micro-pair", &obj);
    benchmark::DoNotOptimize(
        trigger.trigger_here(true, std::chrono::milliseconds(1000)));
  }
  stop.store(true, std::memory_order_release);
  peer.join();
  Engine::instance().reset();
}
BENCHMARK(BM_TriggerMatchedPair)->Unit(benchmark::kMicrosecond);

// ---------------------------------------------------------------------------
// Pattern breakpoints (core/pattern.h): what an armed k-site automaton
// costs on the paths that never pause — the production-affordability
// question for pattern sites, mirroring the 2-site rows above.
// ---------------------------------------------------------------------------

/// BTrigger with a trivially-true global predicate (patterns never call
/// it; the variables carry the cross-thread constraint).
class PatternProbeTrigger : public BTrigger {
 public:
  explicit PatternProbeTrigger(std::string name) : BTrigger(std::move(name)) {}
  [[nodiscard]] bool predicate_global(const BTrigger&) const override {
    return true;
  }
};

void BM_TriggerPatternDormantSite(benchmark::State& state) {
  // A pattern site with no installed spec entry is a dormant no-op —
  // the demo's 0-hit control.  Cached trigger: this is the steady-state
  // cost of shipping pattern sites disabled, and it must track
  // BM_TriggerSpecDisabledCachedTrigger (same two dependent loads).
  if (state.thread_index() == 0) {
    Config::set_enabled(true);
    Engine::instance().reset();
  }
  PatternProbeTrigger trigger("micro-pattern-dormant");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        trigger.trigger_here_site("put", std::chrono::milliseconds(100)));
  }
  if (state.thread_index() == 0) Engine::instance().reset();
}
BENCHMARK(BM_TriggerPatternDormantSite)->ThreadRange(1, kMaxThreads);

void BM_TriggerPatternArmedUnmatched(benchmark::State& state) {
  // Armed pattern, event out of pattern order (no run can start on the
  // second site): the automaton is consulted under the slot mutex and
  // answers kNoMatch — strict pattern order means no pause is paid.
  // This is the armed-but-never-matching cost of a k-site probe, the
  // analogue of a 2-site armed probe whose partner never shows up
  // (minus that probe's postponement T).
  if (state.thread_index() == 0) {
    Config::set_enabled(true);
    Engine::instance().reset();
    BreakpointSpec::parse(
        "micro-pattern-armed pattern=check:t1.put:t2.erase:t1 pause=100")
        .install();
  }
  PatternProbeTrigger trigger("micro-pattern-armed");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        trigger.trigger_here_site("put", std::chrono::milliseconds(100)));
  }
  if (state.thread_index() == 0) {
    BreakpointSpec::clear_installed();
    Engine::instance().reset();
  }
}
BENCHMARK(BM_TriggerPatternArmedUnmatched)->ThreadRange(1, kMaxThreads);

void BM_TriggerPatternLocalReject(benchmark::State& state) {
  // Armed pattern + failing local predicate: the reject happens before
  // the automaton (lock-free, same §5i screen as the 2-site row), so
  // this must track BM_TriggerLocalReject.
  if (state.thread_index() == 0) {
    Config::set_enabled(true);
    Engine::instance().reset();
    BreakpointSpec::parse(
        "micro-pattern-reject pattern=check:t1.put:t2.erase:t1 pause=100")
        .install();
  }
  class Gated : public PatternProbeTrigger {
   public:
    using PatternProbeTrigger::PatternProbeTrigger;
    [[nodiscard]] bool predicate_local() const override { return false; }
  };
  Gated trigger("micro-pattern-reject");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        trigger.trigger_here_site("check", std::chrono::milliseconds(100)));
  }
  if (state.thread_index() == 0) {
    BreakpointSpec::clear_installed();
    Engine::instance().reset();
  }
}
BENCHMARK(BM_TriggerPatternLocalReject)->ThreadRange(1, kMaxThreads);

// ---------------------------------------------------------------------------
// Observability layer (src/obs): the tracing budget.  The always-on
// claim requires the *off* paths to stay flat when the obs layer is
// compiled in (tracing is a runtime switch, default off); the *on*
// paths bound what a trace costs per event.
// ---------------------------------------------------------------------------

#ifndef CBP_DISABLE_OBS
void BM_TriggerSpecDisabledCachedTracingOn(benchmark::State& state) {
  // The budget case from the issue: with event tracing *enabled*, the
  // cached spec-disabled fast path must not grow — it returns before
  // any event is recorded, so this should match the tracing-off twin.
  if (state.thread_index() == 0) {
    Config::set_enabled(true);
    Engine::instance().reset();
    obs::Trace::set_enabled(true);
    BreakpointSpec::parse("micro-specoff-tron off").install();
  }
  int obj = 0;
  ConflictTrigger trigger("micro-specoff-tron", &obj);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        trigger.trigger_here(true, std::chrono::milliseconds(100)));
  }
  if (state.thread_index() == 0) {
    obs::Trace::set_enabled(false);
    obs::Trace::clear();
    BreakpointSpec::clear_installed();
    Engine::instance().reset();
  }
}
BENCHMARK(BM_TriggerSpecDisabledCachedTracingOn)->ThreadRange(1, kMaxThreads);

void BM_TriggerLocalRejectTracingOn(benchmark::State& state) {
  // A local reject with tracing on records one kLocalReject event per
  // call: reject-path cost + one ring push.
  if (state.thread_index() == 0) {
    Config::set_enabled(true);
    Engine::instance().reset();
    obs::Trace::set_enabled(true);
  }
  PredicateTrigger trigger(
      "micro-reject-tron", [] { return false; },
      [](const BTrigger&) { return true; });
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        trigger.trigger_here(true, std::chrono::milliseconds(100)));
  }
  if (state.thread_index() == 0) {
    obs::Trace::set_enabled(false);
    obs::Trace::clear();
    Engine::instance().reset();
  }
}
BENCHMARK(BM_TriggerLocalRejectTracingOn)->ThreadRange(1, kMaxThreads);

void BM_TraceRecordEvent(benchmark::State& state) {
  // The raw per-event cost: clock read + relaxed stores into the
  // caller's own ring (SPSC, no fences on this side).
  if (state.thread_index() == 0) obs::Trace::set_enabled(true);
  for (auto _ : state) {
    obs::Trace::record(obs::EventKind::kArrival, 1, -1, 0);
  }
  if (state.thread_index() == 0) {
    obs::Trace::set_enabled(false);
    obs::Trace::clear();
  }
}
BENCHMARK(BM_TraceRecordEvent)->ThreadRange(1, kMaxThreads);
#endif  // CBP_DISABLE_OBS

// ---------------------------------------------------------------------------
// Hub / instrumentation layer
// ---------------------------------------------------------------------------

void BM_SharedVarNoListener(benchmark::State& state) {
  // Per-thread variable: isolates the hub check from cacheline ping-pong.
  instr::SharedVar<int> var(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(var.read());
    var.write(2);
  }
}
BENCHMARK(BM_SharedVarNoListener)->ThreadRange(1, kMaxThreads);

void BM_PlainAtomicBaseline(benchmark::State& state) {
  std::atomic<int> var{1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(var.load(std::memory_order_relaxed));
    var.store(2, std::memory_order_relaxed);
  }
}
BENCHMARK(BM_PlainAtomicBaseline)->ThreadRange(1, kMaxThreads);

/// Listener that only counts, so the measured cost is the dispatch
/// mechanism itself, not the analysis.
class CountingListener : public instr::Listener {
 public:
  void on_access(const instr::AccessEvent&) override {
    count_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> count_{0};
};

void BM_HubDispatchOneListener(benchmark::State& state) {
  static CountingListener listener;
  if (state.thread_index() == 0) {
    instr::Hub::instance().add_listener(&listener);
  }
  instr::SharedVar<int> var(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(var.read());
    var.write(2);
  }
  if (state.thread_index() == 0) {
    instr::Hub::instance().remove_listener(&listener);
  }
}
BENCHMARK(BM_HubDispatchOneListener)->ThreadRange(1, kMaxThreads);

void BM_TrackedMutexNoListener(benchmark::State& state) {
  static instr::TrackedMutex mu;
  for (auto _ : state) {
    instr::TrackedLock lock(mu);
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_TrackedMutexNoListener)->Threads(1);

void BM_StdMutexBaseline(benchmark::State& state) {
  static std::mutex mu;
  for (auto _ : state) {
    std::scoped_lock lock(mu);
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_StdMutexBaseline)->Threads(1);

// ---------------------------------------------------------------------------
// Detector-attached accesses (striped detector state)
// ---------------------------------------------------------------------------

void BM_EraserAttachedAccess(benchmark::State& state) {
  static detect::EraserDetector detector;
  if (state.thread_index() == 0) {
    detector.reset();
    instr::Hub::instance().add_listener(&detector);
  }
  // Per-thread variable: with striped detector state, disjoint addresses
  // must not serialize on a detector-global mutex.
  instr::SharedVar<int> var(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(var.read());
    var.write(2);
  }
  if (state.thread_index() == 0) {
    instr::Hub::instance().remove_listener(&detector);
  }
}
BENCHMARK(BM_EraserAttachedAccess)->ThreadRange(1, kMaxThreads);

void BM_FastTrackAttachedAccess(benchmark::State& state) {
  static detect::FastTrackDetector detector;
  if (state.thread_index() == 0) {
    detector.reset();
    instr::Hub::instance().add_listener(&detector);
  }
  instr::SharedVar<int> var(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(var.read());
    var.write(2);
  }
  if (state.thread_index() == 0) {
    instr::Hub::instance().remove_listener(&detector);
  }
}
BENCHMARK(BM_FastTrackAttachedAccess)->ThreadRange(1, kMaxThreads);

// ---------------------------------------------------------------------------
// JSON reporting (--json <path>): compact {name, threads, ns_per_op}
// rows, one per benchmark run — the repo's perf-trajectory format.
// ---------------------------------------------------------------------------

class JsonCaptureReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      Row row;
      row.name = run.benchmark_name();
      row.threads = run.threads;
      row.ns_per_op = run.GetAdjustedRealTime() *
                      (run.time_unit == benchmark::kMicrosecond ? 1e3
                       : run.time_unit == benchmark::kMillisecond
                           ? 1e6
                           : run.time_unit == benchmark::kSecond ? 1e9 : 1.0);
      rows_.push_back(row);
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

  bool write_json(const std::string& path) const {
    std::ofstream out(path);
    if (!out) return false;
    out << "{\n  \"bench\": \"bench_micro_overhead\",\n"
        << "  \"time_scale\": 1.0,\n  \"results\": [\n";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      out << "    {\"name\": \"" << rows_[i].name << "\", \"threads\": "
          << rows_[i].threads << ", \"ns_per_op\": " << rows_[i].ns_per_op
          << "}" << (i + 1 < rows_.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    return static_cast<bool>(out);
  }

 private:
  struct Row {
    std::string name;
    int threads = 1;
    double ns_per_op = 0.0;
  };
  std::vector<Row> rows_;
};

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json_path = argv[i + 1];
      for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
      argc -= 2;
      break;
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonCaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  if (!json_path.empty() && !reporter.write_json(json_path)) {
    std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
    return 1;
  }
  return 0;
}
