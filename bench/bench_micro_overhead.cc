// Micro-benchmarks (google-benchmark) backing the paper's "light-weight"
// claim (§1, §4): the cost of a breakpoint call in each regime, and the
// cost of the instrumentation layer.
//
//   * disabled breakpoints are a few nanoseconds (runtime switch);
//   * a local-predicate reject never enters the engine's slow path;
//   * an unmatched arrival costs its postponement (dominated by T);
//   * a matched pair costs the rendezvous + ordering delay;
//   * SharedVar / TrackedMutex add only the hub check when no analysis
//     listener is attached.

#include <benchmark/benchmark.h>

#include <mutex>
#include <thread>

#include "core/cbp.h"
#include "instrument/shared_var.h"
#include "instrument/tracked_mutex.h"
#include "runtime/clock.h"
#include "runtime/latch.h"

namespace {

using namespace cbp;

void BM_TriggerDisabled(benchmark::State& state) {
  Config::set_enabled(false);
  int obj = 0;
  for (auto _ : state) {
    ConflictTrigger trigger("micro-disabled", &obj);
    benchmark::DoNotOptimize(
        trigger.trigger_here(true, std::chrono::milliseconds(100)));
  }
  Config::set_enabled(true);
}
BENCHMARK(BM_TriggerDisabled);

void BM_TriggerLocalReject(benchmark::State& state) {
  Config::set_enabled(true);
  Engine::instance().reset();
  PredicateTrigger trigger(
      "micro-reject", [] { return false; },
      [](const BTrigger&) { return true; });
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        trigger.trigger_here(true, std::chrono::milliseconds(100)));
  }
  Engine::instance().reset();
}
BENCHMARK(BM_TriggerLocalReject);

void BM_TriggerBoundedOut(benchmark::State& state) {
  // After the bound is exhausted the call is a counter check.
  Config::set_enabled(true);
  Engine::instance().reset();
  int obj = 0;
  for (auto _ : state) {
    ConflictTrigger trigger("micro-bounded", &obj);
    trigger.bound(0);
    benchmark::DoNotOptimize(
        trigger.trigger_here(true, std::chrono::milliseconds(100)));
  }
  Engine::instance().reset();
}
BENCHMARK(BM_TriggerBoundedOut);

void BM_TriggerUnmatchedTimeout(benchmark::State& state) {
  // Dominated by the postponement itself; measured at T = the range arg.
  Config::set_enabled(true);
  Engine::instance().reset();
  int obj = 0;
  const auto timeout = std::chrono::microseconds(state.range(0));
  for (auto _ : state) {
    ConflictTrigger trigger("micro-timeout", &obj);
    benchmark::DoNotOptimize(trigger.trigger_here(
        true, std::chrono::duration_cast<std::chrono::milliseconds>(
                  std::chrono::microseconds(timeout))));
  }
  Engine::instance().reset();
}
BENCHMARK(BM_TriggerUnmatchedTimeout)->Arg(1000)->Arg(5000);

void BM_TriggerMatchedPair(benchmark::State& state) {
  // Two threads rendezvous per iteration: measures hit + ordering cost.
  Config::set_enabled(true);
  Config::set_order_delay(std::chrono::microseconds(50));
  Engine::instance().reset();
  rt::TimeScale::set(1.0);
  int obj = 0;
  std::atomic<bool> stop{false};
  std::thread peer([&] {
    while (!stop.load(std::memory_order_acquire)) {
      ConflictTrigger trigger("micro-pair", &obj);
      (void)trigger.trigger_here(false, std::chrono::milliseconds(50));
    }
  });
  for (auto _ : state) {
    ConflictTrigger trigger("micro-pair", &obj);
    benchmark::DoNotOptimize(
        trigger.trigger_here(true, std::chrono::milliseconds(1000)));
  }
  stop.store(true, std::memory_order_release);
  peer.join();
  Engine::instance().reset();
}
BENCHMARK(BM_TriggerMatchedPair)->Unit(benchmark::kMicrosecond);

void BM_SharedVarNoListener(benchmark::State& state) {
  instr::SharedVar<int> var(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(var.read());
    var.write(2);
  }
}
BENCHMARK(BM_SharedVarNoListener);

void BM_PlainAtomicBaseline(benchmark::State& state) {
  std::atomic<int> var{1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(var.load(std::memory_order_relaxed));
    var.store(2, std::memory_order_relaxed);
  }
}
BENCHMARK(BM_PlainAtomicBaseline);

void BM_TrackedMutexNoListener(benchmark::State& state) {
  instr::TrackedMutex mu;
  for (auto _ : state) {
    instr::TrackedLock lock(mu);
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_TrackedMutexNoListener);

void BM_StdMutexBaseline(benchmark::State& state) {
  std::mutex mu;
  for (auto _ : state) {
    std::scoped_lock lock(mu);
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_StdMutexBaseline);

}  // namespace

BENCHMARK_MAIN();
