// Reproduces Table 1 of the paper: for every Java-benchmark bug, the
// normal runtime, the runtime with concurrent breakpoints, the overhead,
// and the empirical probability of triggering the breakpoints and
// causing the bug, next to the paper's reported probability.
//
// Absolute runtimes differ from the paper (replicas are ms-scale and the
// nominal pauses are time-scaled); the comparison targets are the
// probability column and the overhead *shape*.

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "harness/experiment.h"
#include "harness/registry.h"

int main(int argc, char** argv) {
  using namespace cbp;
  std::printf("=== Table 1: Java benchmark bugs, reproducibility with "
              "concurrent breakpoints ===\n");
  const auto config = bench::setup(argc, argv);

  harness::TextTable table({"Benchmark", "LoC", "Normal(s)", "w/ctr(s)",
                            "Ovh(%)", "Breakpoint", "Error", "Prob",
                            "Paper", "Comments"});
  bench::JsonReport report("table1", config.time_scale);

  for (const harness::Table1Case& row : harness::table1_cases()) {
    apps::RunOptions options;
    options.pause = row.pause;
    options.work_scale = row.work_scale;
    options.stall_after = std::chrono::milliseconds(4000);
    options.clock = config.clock;

    const auto overhead = harness::measure_overhead(row.runner, options,
                                                    config.runs, config.jobs);
    options.breakpoints = true;
    const auto repeated = harness::run_repeated_parallel(
        row.runner, options, config.runs, config.jobs);

    // The paper omits runtime/overhead for stall bugs ("stalls due to
    // missed notifications are detected by large timeouts; therefore,
    // the runtime and overhead for such errors are omitted"): the
    // breakpointed runtime is the time to detect the stall, not work.
    const bool stall_row = row.error == "stall";
    table.add_row({row.benchmark, row.paper_loc,
                   harness::fmt_seconds(overhead.normal_s),
                   stall_row ? "-" : harness::fmt_seconds(overhead.with_ctr_s),
                   stall_row
                       ? "-"
                       : harness::fmt_percent(overhead.overhead_percent()),
                   row.bug, row.error,
                   harness::fmt_prob(repeated.bug_probability()),
                   harness::fmt_prob(row.paper_prob), row.comment});
    const std::string key = std::string(row.benchmark) + "/" + row.bug;
    report.add(key, config.jobs, repeated.bug_probability(), "probability");
    report.add(key + "/wall_clock", config.jobs, repeated.wall_clock_s, "s");
    if (!stall_row) {
      report.add(key + "/overhead", config.jobs, overhead.overhead_percent(),
                 "%");
    }
  }

  report.flush(config.json_path);
  table.print(std::cout);
  std::printf("\n'Prob' = fraction of runs that hit the breakpoint AND "
              "exhibited the bug; 'Paper' = the paper's column.\n");
  return 0;
}
