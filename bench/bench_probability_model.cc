// Reproduces the §3 probabilistic analysis:
//   (a) closed forms vs Monte-Carlo schedule simulation — P(hit) without
//       BTRIGGER, with BTRIGGER for growing T, and the gain factor;
//   (b) a live two-real-threads validation: each thread takes N timed
//       steps and visits the breakpoint state at m random steps; the
//       measured hit rate is compared against the model.
// This regenerates the paper's analytical "figure" (the formula family
// of §3) as numeric series.

#include <cstdio>
#include <iostream>
#include <thread>

#include "bench_util.h"
#include "core/cbp.h"
#include "harness/experiment.h"
#include "model/probability.h"
#include "model/schedule_sim.h"
#include "runtime/latch.h"
#include "runtime/rng.h"

namespace {

using namespace cbp;

/// Live validation: two threads, N steps of `step_us` microseconds, m
/// breakpoint visits at random steps, pause T = pause_steps * step_us.
double live_hit_rate(int n_steps, int m_visits, int pause_steps, int trials,
                     int step_us) {
  int hits = 0;
  rt::Rng rng(7);
  for (int trial = 0; trial < trials; ++trial) {
    Engine::instance().reset();
    const auto pause = std::chrono::microseconds(pause_steps * step_us);
    int dummy = 0;
    rt::StartGate gate;
    auto body = [&](rt::Rng thread_rng) {
      // Pick m distinct visit steps.
      std::vector<int> visits;
      while (static_cast<int>(visits.size()) < m_visits) {
        const int step = static_cast<int>(
            thread_rng.next_below(static_cast<std::uint64_t>(n_steps)));
        if (std::find(visits.begin(), visits.end(), step) == visits.end()) {
          visits.push_back(step);
        }
      }
      gate.wait();
      for (int step = 0; step < n_steps; ++step) {
        if (std::find(visits.begin(), visits.end(), step) != visits.end()) {
          ConflictTrigger trigger("live-model", &dummy);
          trigger.trigger_here(
              true, std::chrono::duration_cast<std::chrono::milliseconds>(
                        pause));
        }
        std::this_thread::sleep_for(std::chrono::microseconds(step_us));
      }
    };
    std::thread a(body, rng.split());
    std::thread b(body, rng.split());
    gate.open();
    a.join();
    b.join();
    if (Engine::instance().stats("live-model").hits > 0) ++hits;
  }
  Engine::instance().reset();
  return static_cast<double>(hits) / trials;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== §3: probability of hitting a concurrent breakpoint ===\n");
  const auto config = bench::setup(argc, argv, /*default_runs=*/20,
                                   /*default_scale=*/1.0);

  // ---- (a) closed forms vs Monte-Carlo -----------------------------------
  std::printf("--- unaided: P = 1 - C(N-m,m)/C(N,m), bound "
              "1-(1-m/(N-m+1))^m ---\n");
  harness::TextTable unaided({"N", "m", "P exact", "P simulated", "bound"});
  for (const std::uint64_t n : {1000ULL, 10'000ULL}) {
    for (const std::uint64_t m : {2ULL, 5ULL, 10ULL}) {
      model::SimParams params;
      params.n_steps = n;
      params.m_visits = m;
      params.big_m_visits = m;
      params.pause_steps = 1;
      params.trials = 30'000;
      unaided.add_row({std::to_string(n), std::to_string(m),
                       harness::fmt_prob(model::p_hit_unaided(n, m)),
                       harness::fmt_prob(model::simulate(params).probability()),
                       harness::fmt_prob(model::p_hit_unaided_bound(n, m))});
    }
  }
  unaided.print(std::cout);

  std::printf("\n--- BTRIGGER: P >= 1-(1-mT/(N+MT-M))^m, gain "
              ">= T(N-m+1)/(N+MT-M) ---\n");
  harness::TextTable aided({"N", "m", "T", "P formula", "P simulated",
                            "gain factor"});
  const std::uint64_t n = 10'000;
  const std::uint64_t m = 5;
  for (const std::uint64_t t : {1ULL, 10ULL, 50ULL, 200ULL, 1000ULL}) {
    model::SimParams params;
    params.n_steps = n;
    params.m_visits = m;
    params.big_m_visits = m;
    params.pause_steps = t;
    params.trials = 30'000;
    aided.add_row({std::to_string(n), std::to_string(m), std::to_string(t),
                   harness::fmt_prob(model::p_hit_btrigger(n, m, m, t)),
                   harness::fmt_prob(model::simulate(params).probability()),
                   harness::fmt_percent(model::gain_factor(n, m, m, t))});
  }
  aided.print(std::cout);

  std::printf("\n--- precision: smaller M (more precise local predicate) "
              "raises P at fixed m, T=100 ---\n");
  harness::TextTable precision({"M", "P formula"});
  for (const std::uint64_t big_m : {5ULL, 25ULL, 100ULL, 500ULL}) {
    precision.add_row(
        {std::to_string(big_m),
         harness::fmt_prob(model::p_hit_btrigger(n, m, big_m, 100))});
  }
  precision.print(std::cout);

  // ---- (b) live threads ----------------------------------------------------
  std::printf("\n--- live validation: 2 real threads, N=300 steps x 100us, "
              "m=3 ---\n");
  harness::TextTable live({"T (steps)", "P live", "P formula (lower bound)"});
  for (const int t : {1, 10, 60}) {
    const double measured =
        live_hit_rate(/*n_steps=*/300, /*m_visits=*/3, /*pause_steps=*/t,
                      /*trials=*/config.runs, /*step_us=*/100);
    live.add_row({std::to_string(t), harness::fmt_prob(measured),
                  harness::fmt_prob(model::p_hit_btrigger(300, 3, 3,
                                                          static_cast<std::uint64_t>(t)))});
  }
  live.print(std::cout);
  std::printf("\nShape to check: simulated ≥ formula (it is a lower "
              "bound), both rise toward 1.0 with T, and the gain factor "
              "grows with T — the paper's §3 argument.\n");
  return 0;
}
