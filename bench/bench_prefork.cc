// Cross-process reproduction probabilities (Table 2's methodology taken
// across address spaces): the pre-fork httpdlike replica forks N worker
// processes over a shared-mmap scoreboard and routes its breakpoints
// through the per-machine trigger broker (src/broker).
//
// Three configurations, each `runs` trials:
//
//   with breakpoints    — the scope=process-group breakpoints park a
//                         worker inside the scoreboard's TOCTOU window;
//                         the trial reproduces the race iff a double-
//                         claim is observed.  The paper-style check: the
//                         observed race probability's 95% Wilson
//                         interval must overlap the predicted one (the
//                         breakpoint *hit* probability — every hit
//                         aligns the two claims, so hits predict races).
//   without breakpoints — the bare workload; the race window is a few
//                         instructions wide, so this stays near zero.
//   kill worker on hit  — worker 0 dies holding its OrderingGuard; the
//                         trial passes iff a survivor was released as
//                         peer-lost and nothing wedged.
//
// fork discipline: trials run serially from this single-threaded
// process (each trial forks its workers before starting its broker), so
// --trial-jobs is ignored here.  A virtual clock cannot schedule
// foreign processes, so --clock=virtual falls back to scaled.

#include <cstdio>
#include <iostream>

#include "apps/httpdlike/prefork.h"
#include "bench_util.h"
#include "harness/experiment.h"

int main(int argc, char** argv) {
  using namespace cbp;
  std::printf("=== Cross-process reproduction: pre-fork scoreboard race "
              "via the trigger broker ===\n");
  auto config = bench::setup(argc, argv, /*default_runs=*/10,
                             /*default_scale=*/1.0);
  if (config.jobs > 1) {
    std::printf("(note: trials fork worker processes and run serially; "
                "--trial-jobs ignored)\n");
  }
  if (config.clock == rt::ClockMode::kVirtual) {
    std::printf("(note: process-group breakpoints need kernel waits; "
                "--clock=virtual falls back to scaled)\n");
    config.clock = rt::ClockMode::kScaled;
  }

  apps::httpdlike::PreforkOptions base;
  base.workers = 4;
  base.requests_per_worker = 25000;
  base.pause = std::chrono::milliseconds(100);

  int with_races = 0, with_hits = 0, without_races = 0;
  int corrupt_trials = 0;
  std::uint64_t total_matches = 0, total_timeouts = 0;
  double with_seconds = 0.0, without_seconds = 0.0;

  for (int i = 0; i < config.runs; ++i) {
    auto options = base;
    options.breakpoints = true;
    options.seed = 1 + static_cast<std::uint64_t>(i);
    const auto outcome = apps::httpdlike::run_prefork_scoreboard(options);
    with_races += outcome.scoreboard_races > 0 ? 1 : 0;
    with_hits += outcome.broker_matches > 0 ? 1 : 0;
    corrupt_trials += outcome.corrupt_log_lines > 0 ? 1 : 0;
    total_matches += outcome.broker_matches;
    total_timeouts += outcome.broker_timeouts;
    with_seconds += outcome.runtime_seconds;
  }

  for (int i = 0; i < config.runs; ++i) {
    auto options = base;
    options.breakpoints = false;
    options.seed = 1 + static_cast<std::uint64_t>(i);
    const auto outcome = apps::httpdlike::run_prefork_scoreboard(options);
    without_races += outcome.scoreboard_races > 0 ? 1 : 0;
    without_seconds += outcome.runtime_seconds;
  }

  const int kill_runs = std::min(config.runs, 5);
  int kill_ok = 0;
  for (int i = 0; i < kill_runs; ++i) {
    auto options = base;
    options.breakpoints = true;
    options.kill_worker_on_hit = true;
    options.seed = 101 + static_cast<std::uint64_t>(i);
    const auto outcome = apps::httpdlike::run_prefork_scoreboard(options);
    if (outcome.worker_killed && !outcome.wedged &&
        (outcome.worker_peer_lost > 0 || outcome.broker_peer_lost > 0)) {
      ++kill_ok;
    }
  }

  const auto observed = harness::wilson_interval(with_races, config.runs);
  const auto predicted = harness::wilson_interval(with_hits, config.runs);
  const auto control = harness::wilson_interval(without_races, config.runs);
  const bool in_interval = observed.overlaps(predicted);

  harness::TextTable table({"Configuration", "Races/Runs", "Prob.",
                            "95% CI", "Avg s/run"});
  auto ci = [](const harness::ProbabilityInterval& w) {
    return "[" + harness::fmt_prob(w.low) + ", " + harness::fmt_prob(w.high) +
           "]";
  };
  table.add_row({"with breakpoints",
                 std::to_string(with_races) + "/" +
                     std::to_string(config.runs),
                 harness::fmt_prob(static_cast<double>(with_races) /
                                   config.runs),
                 ci(observed),
                 harness::fmt_seconds(with_seconds / config.runs)});
  table.add_row({"predicted (hit prob.)",
                 std::to_string(with_hits) + "/" + std::to_string(config.runs),
                 harness::fmt_prob(static_cast<double>(with_hits) /
                                   config.runs),
                 ci(predicted), "-"});
  table.add_row({"without breakpoints",
                 std::to_string(without_races) + "/" +
                     std::to_string(config.runs),
                 harness::fmt_prob(static_cast<double>(without_races) /
                                   config.runs),
                 ci(control),
                 harness::fmt_seconds(without_seconds / config.runs)});
  table.add_row({"kill worker on hit",
                 std::to_string(kill_ok) + "/" + std::to_string(kill_runs),
                 harness::fmt_prob(kill_runs == 0
                                       ? 0.0
                                       : static_cast<double>(kill_ok) /
                                             kill_runs),
                 "-", "-"});
  table.print(std::cout);

  std::printf("\nbroker: %llu matches, %llu timeouts across the armed runs; "
              "log corruption reproduced in %d/%d trials\n",
              static_cast<unsigned long long>(total_matches),
              static_cast<unsigned long long>(total_timeouts), corrupt_trials,
              config.runs);
  std::printf("observed race CI %s predicted hit CI -> %s\n",
              in_interval ? "overlaps" : "MISSES",
              in_interval ? "OK" : "FAIL");

  bench::JsonReport report("prefork", config.time_scale);
  report.add("prefork/race-prob-with-bp", base.workers,
             static_cast<double>(with_races) / config.runs, "probability");
  report.add("prefork/hit-prob", base.workers,
             static_cast<double>(with_hits) / config.runs, "probability");
  report.add("prefork/race-prob-without-bp", base.workers,
             static_cast<double>(without_races) / config.runs, "probability");
  report.add("prefork/kill-peer-lost", base.workers,
             kill_runs == 0 ? 0.0 : static_cast<double>(kill_ok) / kill_runs,
             "probability");
  report.flush(config.json_path);

  return in_interval ? 0 : 1;
}
