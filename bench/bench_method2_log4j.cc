// Reproduces the §5 Methodology II table: the log4j AsyncAppender stall.
//
// For each of the four contended site pairs, the conflict is resolved in
// both orders; the table reports the fraction of runs that stalled and
// the fraction in which the breakpoint was actually hit — the numbers
// from which the paper infers that the (236 -> 309) resolution is the
// bug.  A no-breakpoint row reports the natural stall rate ("5 out of
// 100 test executions" in the paper).

#include <cstdio>
#include <iostream>

#include "apps/logging/async_appender.h"
#include "bench_util.h"
#include "harness/experiment.h"

namespace {

using cbp::apps::logging::MethodologyIIOptions;
using cbp::apps::logging::run_methodology2;
using cbp::apps::logging::Site;

struct OrderedPair {
  Site first;
  Site second;
};

const char* site_name(Site site) {
  switch (site) {
    case Site::kAppend: return "100";
    case Site::kSetBufferSize: return "236";
    case Site::kClose: return "277";
    case Site::kDispatch: return "309";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cbp;
  std::printf("=== §5 Methodology II: log4j AsyncAppender missed-notify "
              "stall ===\n");
  const auto config = bench::setup(argc, argv, /*default_runs=*/40);

  const OrderedPair pairs[] = {
      {Site::kAppend, Site::kDispatch},
      {Site::kDispatch, Site::kAppend},
      {Site::kSetBufferSize, Site::kDispatch},
      {Site::kDispatch, Site::kSetBufferSize},
      {Site::kAppend, Site::kSetBufferSize},
      {Site::kSetBufferSize, Site::kAppend},
      {Site::kDispatch, Site::kClose},
      {Site::kClose, Site::kDispatch},
  };

  // Paper's table, §5 step 3 (stall %, BP hit %), in the same order.
  const int paper_stall[] = {0, 0, 100, 0, 0, 0, 97, 99};
  const int paper_hit[] = {100, 100, 100, 100, 100, 100, 3, 1};

  harness::TextTable table({"Conflict resolve order", "System stall (%)",
                            "BP hit (%)", "Paper stall", "Paper hit"});

  auto& engine = Engine::instance();
  int index = 0;
  for (const OrderedPair& pair : pairs) {
    int stalls = 0;
    int hits = 0;
    for (int run = 0; run < config.runs; ++run) {
      engine.reset();
      MethodologyIIOptions options;
      options.first = pair.first;
      options.second = pair.second;
      options.pause = std::chrono::milliseconds(200);
      options.stall_after = std::chrono::milliseconds(2000);
      options.seed = static_cast<std::uint64_t>(run + 1);
      const auto outcome = run_methodology2(options);
      stalls += outcome.stalled ? 1 : 0;
      hits += outcome.breakpoint_hit ? 1 : 0;
    }
    table.add_row({std::string(site_name(pair.first)) + " -> " +
                       site_name(pair.second),
                   std::to_string(100 * stalls / config.runs),
                   std::to_string(100 * hits / config.runs),
                   std::to_string(paper_stall[index]),
                   std::to_string(paper_hit[index])});
    ++index;
  }

  // Natural (no breakpoint) stall rate — the paper's starting
  // observation: "in 5 out of 100 test executions, the program would
  // stall".
  int natural_stalls = 0;
  const int natural_runs = config.runs * 3;
  for (int run = 0; run < natural_runs; ++run) {
    engine.reset();
    MethodologyIIOptions options;
    options.breakpoints = false;
    options.pause = std::chrono::milliseconds(0);
    options.stall_after = std::chrono::milliseconds(2000);
    // Calibrated scheduling jitter: reproduces the paper's observation
    // that the stock program stalls in roughly 5 of 100 stress runs.
    options.jitter = std::chrono::microseconds(180'000);
    options.seed = static_cast<std::uint64_t>(run + 1);
    natural_stalls += run_methodology2(options).stalled ? 1 : 0;
  }
  table.add_row({"(no breakpoint)",
                 std::to_string(100 * natural_stalls / natural_runs), "-",
                 "~5", "-"});

  table.print(std::cout);
  std::printf("\nInference (paper §5 step 4): the 236 -> 309 resolution "
              "always stalls with the breakpoint always hit — that pair "
              "IS the bug; the 309 -> 277 / 277 -> 309 rows stall without "
              "hitting, so close() is not the cause.\n");
  return 0;
}
