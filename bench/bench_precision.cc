// Reproduces §6.3: refining the local predicate removes useless pausing
// without sacrificing the hit.
//
//   * cache4j atomicity1: ignoreFirst=<warmup> skips the warm-up
//     constructor postponements (the paper's ignoreFirst=7200);
//   * moldyn race1: bound=4 stops the breakpoint after the bug has been
//     exhibited (the site fires hundreds of times per run);
//   * swing deadlock1: isLockTypeHeld("BasicCaret") pauses only in the
//     one context where the deadlock is possible.

#include <cstdio>
#include <iostream>

#include "apps/cache/cache.h"
#include "apps/kernels/kernels.h"
#include "apps/swinglike/swing.h"
#include "bench_util.h"
#include "harness/experiment.h"

int main(int argc, char** argv) {
  using namespace cbp;
  std::printf("=== §6.3: local-predicate precision refinements ===\n");
  const auto config = bench::setup(argc, argv, /*default_runs=*/15);

  harness::TextTable table({"Subject", "Refinement", "Runtime(s)", "P(bug)",
                            "Speedup"});
  bench::JsonReport report("precision", config.time_scale);

  // One row per (subject, refinement): probability and mean runtime.
  auto record = [&](const std::string& key,
                    const cbp::harness::RepeatedResult& result) {
    report.add(key, config.jobs, result.bug_probability(), "probability");
    report.add(key + "/runtime", config.jobs, result.mean_runtime_s, "s");
  };

  apps::RunOptions options;
  options.pause = std::chrono::milliseconds(100);
  options.stall_after = std::chrono::milliseconds(8000);
  options.clock = config.clock;

  // --- cache4j: ignoreFirst -------------------------------------------------
  {
    auto unrefined = [](const apps::RunOptions& o) {
      return apps::cache::run_atomicity1(o, 0);
    };
    auto refined = [](const apps::RunOptions& o) {
      return apps::cache::run_atomicity1(o,
                                         apps::cache::kWarmupConstructions);
    };
    const auto base = harness::run_repeated_parallel(
        unrefined, options, config.runs, config.jobs);
    const auto fast = harness::run_repeated_parallel(
        refined, options, config.runs, config.jobs);
    record("cache4j_atomicity1/none", base);
    record("cache4j_atomicity1/ignore_first", fast);
    table.add_row({"cache4j atomicity1", "none",
                   harness::fmt_seconds(base.mean_runtime_s),
                   harness::fmt_prob(base.bug_probability()), "1.0x"});
    table.add_row(
        {"cache4j atomicity1",
         "ignoreFirst=" + std::to_string(apps::cache::kWarmupConstructions),
         harness::fmt_seconds(fast.mean_runtime_s),
         harness::fmt_prob(fast.bug_probability()),
         harness::fmt_percent(base.mean_runtime_s /
                              std::max(1e-9, fast.mean_runtime_s)) +
             "x"});
  }

  // --- moldyn: bound ---------------------------------------------------------
  {
    auto unbounded = [](const apps::RunOptions& o) {
      return apps::kernels::run_moldyn_race1(o, UINT64_MAX);
    };
    auto bounded = [](const apps::RunOptions& o) {
      return apps::kernels::run_moldyn_race1(o,
                                             apps::kernels::kMoldynRace1Bound);
    };
    const auto base = harness::run_repeated_parallel(
        unbounded, options, config.runs, config.jobs);
    const auto fast = harness::run_repeated_parallel(
        bounded, options, config.runs, config.jobs);
    record("moldyn_race1/none", base);
    record("moldyn_race1/bound", fast);
    table.add_row({"moldyn race1", "none",
                   harness::fmt_seconds(base.mean_runtime_s),
                   harness::fmt_prob(base.bug_probability()), "1.0x"});
    table.add_row({"moldyn race1", "bound=4",
                   harness::fmt_seconds(fast.mean_runtime_s),
                   harness::fmt_prob(fast.bug_probability()),
                   harness::fmt_percent(base.mean_runtime_s /
                                        std::max(1e-9,
                                                 fast.mean_runtime_s)) +
                       "x"});
  }

  // --- swing: isLockTypeHeld -------------------------------------------------
  {
    auto unrefined = [](const apps::RunOptions& o) {
      apps::swinglike::SwingOptions swing;
      swing.base = o;
      swing.refined = false;
      return apps::swinglike::run_deadlock1(swing);
    };
    auto refined = [](const apps::RunOptions& o) {
      apps::swinglike::SwingOptions swing;
      swing.base = o;
      swing.refined = true;
      return apps::swinglike::run_deadlock1(swing);
    };
    apps::RunOptions swing_options = options;
    swing_options.pause = std::chrono::milliseconds(500);
    const auto base = harness::run_repeated_parallel(
        unrefined, swing_options, config.runs, config.jobs);
    const auto fast = harness::run_repeated_parallel(
        refined, swing_options, config.runs, config.jobs);
    record("swing_deadlock1/none", base);
    record("swing_deadlock1/lock_type_held", fast);
    table.add_row({"swing deadlock1", "none",
                   harness::fmt_seconds(base.mean_runtime_s),
                   harness::fmt_prob(base.bug_probability()), "1.0x"});
    table.add_row({"swing deadlock1", "isLockTypeHeld(BasicCaret)",
                   harness::fmt_seconds(fast.mean_runtime_s),
                   harness::fmt_prob(fast.bug_probability()),
                   harness::fmt_percent(base.mean_runtime_s /
                                        std::max(1e-9,
                                                 fast.mean_runtime_s)) +
                       "x"});
  }

  report.flush(config.json_path);
  table.print(std::cout);
  std::printf("\nShape to check: each refinement cuts the runtime sharply "
              "while P(bug) stays at (or rises to) ~1.0 — §6.3's claim.\n");
  return 0;
}
