// Ablation: systematic schedule exploration (CHESS-style) vs one
// concurrent breakpoint (§7 positioning).
//
// Scenario, matching the paper's reproduction story: a user observed a
// failure under ONE specific interleaving (the tightly alternating
// schedule, recorded as a witness).  The developer without the witness
// must search for it: the explorer replays candidate interleavings until
// the failing one recurs.  A concurrent breakpoint — two trigger_here
// calls encoding the conflict — reproduces it in one run.  The table
// shows the search cost the breakpoint sidesteps.

#include <cstdio>
#include <iostream>
#include <optional>

#include "bench_util.h"
#include "fuzz/explore.h"
#include "harness/experiment.h"
#include "instrument/shared_var.h"
#include "replay/replayer.h"
#include "runtime/context.h"
#include "runtime/latch.h"
#include "runtime/vclock.h"

namespace {

using namespace cbp;
using replay::Trace;
using replay::TraceOp;

/// Per-role op sequence: N increments = N (read, write) pairs.
std::vector<TraceOp> role_ops(int role, int increments) {
  std::vector<TraceOp> ops;
  for (int i = 0; i < increments; ++i) {
    ops.push_back(TraceOp{role, TraceOp::Kind::kRead, 0});
    ops.push_back(TraceOp{role, TraceOp::Kind::kWrite, 0});
  }
  return ops;
}

/// The witness: the perfectly alternating interleaving (deep in the
/// lexicographic enumeration).
Trace witness_trace(int increments) {
  Trace trace;
  const auto r0 = role_ops(0, increments);
  const auto r1 = role_ops(1, increments);
  for (std::size_t i = 0; i < r0.size(); ++i) {
    trace.ops.push_back(r0[i]);
    trace.ops.push_back(r1[i]);
  }
  return trace;
}

/// Replays the two-thread increment workload under `trace`; true iff an
/// update was lost.  Under --clock=virtual each replay runs inside a
/// private discrete-event clock: the replayer's 300 µs pacing sleeps and
/// divergence timeouts become virtual, so the search pays only CPU.
bool run_under_trace(const Trace& trace, int increments, rt::ClockMode mode) {
  instr::SharedVar<int> counter{0};
  replay::Replayer replayer(trace);
  replayer.set_step_delay(std::chrono::microseconds(300));
  instr::ScopedListener registration(replayer);
  std::optional<rt::VirtualClock> vclock;
  std::optional<rt::ScopedClock> bound;
  if (mode == rt::ClockMode::kVirtual) {
    vclock.emplace();
    bound.emplace(&*vclock);
  }
  rt::StartGate gate;
  auto worker = [&](int role) {
    replayer.bind_this_thread(role);
    gate.wait();
    for (int i = 0; i < increments; ++i) {
      const int value = counter.read();
      counter.write(value + 1);
    }
  };
  rt::Thread a(worker, 0);
  rt::Thread b(worker, 1);
  gate.open();
  a.join();
  b.join();
  return !replayer.diverged() && counter.peek() < 2 * increments;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Ablation: systematic exploration vs one breakpoint ===\n");
  const auto config = bench::setup(argc, argv, /*default_runs=*/1);

  harness::TextTable table({"N (ops/thread)", "Interleavings",
                            "Schedules to witness (full)",
                            "Schedules (ctx-bounded)", "Breakpoint runs"});
  // The explorer replays schedules through the process-global
  // instrumentation hub, so the search itself runs serially; the JSON
  // report still records the search-cost curve for trend tracking.
  bench::JsonReport report("exploration", config.time_scale);

  for (const int increments : {1, 2, 3, 4}) {
    const auto r0 = role_ops(0, increments);
    const auto r1 = role_ops(1, increments);
    const auto total = fuzz::interleaving_count(r0.size(), r1.size());

    const Trace witness = witness_trace(increments);
    // "Found the failure" = this replayed schedule loses an update AND is
    // the observed witness interleaving.
    auto is_the_failure = [&](const Trace& trace) {
      return trace.ops == witness.ops &&
             run_under_trace(trace, increments, config.clock);
    };

    fuzz::ExploreOptions full;
    full.max_schedules = 200'000;
    const auto unbounded = fuzz::explore_schedules(r0, r1, is_the_failure,
                                                   full);

    fuzz::ExploreOptions bounded = full;
    bounded.context_bound = 4 * increments;  // the witness switches 4N-1 times
    const auto ctx = fuzz::explore_schedules(r0, r1, is_the_failure, bounded);

    table.add_row(
        {std::to_string(increments), std::to_string(total),
         unbounded.buggy_schedules > 0
             ? std::to_string(unbounded.schedules_run)
             : "not found",
         ctx.buggy_schedules > 0
             ? std::to_string(ctx.schedules_run + ctx.schedules_skipped)
             : "not found",
         "1"});
    const std::string key = "N=" + std::to_string(increments);
    report.add(key + "/interleavings", 1, static_cast<double>(total), "count");
    report.add(key + "/schedules_full", 1,
               static_cast<double>(unbounded.schedules_run), "count");
    report.add(key + "/schedules_ctx_bounded", 1,
               static_cast<double>(ctx.schedules_run + ctx.schedules_skipped),
               "count");
  }

  report.flush(config.json_path);
  table.print(std::cout);
  std::printf("\nThe explorer re-executes the program once per candidate "
              "schedule (CHESS-style, context bounding helps but still "
              "grows); a concurrent breakpoint encodes the known bug and "
              "reproduces it in one run — the paper's positioning against "
              "systematic exploration for *reproduction*.\n");
  return 0;
}
