// Reproduces §6.2: increasing the pause time raises the probability of
// hitting a breakpoint — at the cost of runtime.
//
// Subjects, as in the paper:
//   * hedc race1:     0.87 at T=100ms  ->  1.00 at T=1s
//   * swing deadlock1: 0.63 at T=100ms ->  0.99 at T=1s
// plus a finer sweep showing the monotone curve in between.

#include <cstdio>
#include <iostream>

#include "apps/crawler/crawler.h"
#include "apps/swinglike/swing.h"
#include "bench_util.h"
#include "harness/experiment.h"

int main(int argc, char** argv) {
  using namespace cbp;
  std::printf("=== §6.2: probability vs pause time T ===\n");
  const auto config = bench::setup(argc, argv, /*default_runs=*/40);

  const int pause_ms[] = {50, 100, 200, 500, 1000, 2000};

  harness::TextTable table({"Subject", "T (nominal)", "P(bug)", "Mean run(s)",
                            "Paper"});
  bench::JsonReport report("pause_time", config.time_scale);

  for (const int t : pause_ms) {
    apps::RunOptions options;
    options.pause = std::chrono::milliseconds(t);
    options.stall_after = std::chrono::milliseconds(8000);
    options.clock = config.clock;
    const auto result = harness::run_repeated_parallel(
        apps::crawler::run_race1, options, config.runs, config.jobs);
    std::string paper = t == 100 ? "0.87" : (t == 1000 ? "1.00" : "-");
    table.add_row({"hedc race1", std::to_string(t) + "ms",
                   harness::fmt_prob(result.bug_probability()),
                   harness::fmt_seconds(result.mean_runtime_s), paper});
    report.add("hedc_race1/T=" + std::to_string(t) + "ms", config.jobs,
               result.bug_probability(), "probability");
    report.add("hedc_race1/T=" + std::to_string(t) + "ms/runtime",
               config.jobs,
               result.mean_runtime_s, "s");
  }

  for (const int t : pause_ms) {
    apps::RunOptions options;
    options.pause = std::chrono::milliseconds(t);
    options.stall_after = std::chrono::milliseconds(8000);
    options.clock = config.clock;
    auto runner = [](const apps::RunOptions& run_options) {
      apps::swinglike::SwingOptions swing;
      swing.base = run_options;
      swing.refined = true;
      return apps::swinglike::run_deadlock1(swing);
    };
    const auto result = harness::run_repeated_parallel(runner, options,
                                                       config.runs,
                                                       config.jobs);
    std::string paper = t == 100 ? "0.63" : (t == 1000 ? "0.99" : "-");
    table.add_row({"swing deadlock1", std::to_string(t) + "ms",
                   harness::fmt_prob(result.bug_probability()),
                   harness::fmt_seconds(result.mean_runtime_s), paper});
    report.add("swing_deadlock1/T=" + std::to_string(t) + "ms", config.jobs,
               result.bug_probability(), "probability");
    report.add("swing_deadlock1/T=" + std::to_string(t) + "ms/runtime",
               config.jobs,
               result.mean_runtime_s, "s");
  }

  report.flush(config.json_path);
  table.print(std::cout);
  std::printf("\nShape to check: P rises monotonically with T toward 1.0 "
              "while the mean runtime grows (the paper's §6.2 trade-off).\n");
  return 0;
}
