// Serial vs parallel trial execution: the same repeated-trial batches
// (Table 1 rows) run once through the serial scheduler and once through
// run_repeated_parallel, comparing
//
//   * wall clock     — the point of the parallel scheduler: trials are
//     dominated by scaled nominal pauses, so N workers overlap N sleeps;
//   * determinism    — trial i carries seed base+i on both paths, so the
//     per-seed verdict streams are comparable seed by seed;
//   * probabilities  — hit/bug rates must agree statistically (95%
//     Wilson intervals overlap); timing-sensitive replicas can flip a
//     marginal race under hardware contention, so exact-count equality
//     is not required.
//
// Under --clock=virtual the comparison changes shape (DESIGN.md §5g):
// trials run at the paper's *nominal* T (time_scale 1.0) on a per-trial
// discrete-event clock, against a scaled-clock serial baseline at the
// suite's default scale.  Virtual trials are deterministic, so the
// serial and parallel virtual legs must agree *exactly* seed by seed,
// while the virtual-vs-scaled probabilities are gated statistically
// (Wilson overlap).  The JSON report from this mode is committed as
// BENCH_vtime.json.
//
// Exits non-zero when any row's probability intervals fail to overlap
// (or, under --clock=virtual, when the serial and parallel virtual legs
// diverge) — CI runs both modes as smoke checks of the schedulers.

#include <cstdio>
#include <iostream>
#include <string>

#include "bench_util.h"
#include "harness/experiment.h"
#include "harness/registry.h"

namespace {

using namespace cbp;

/// Fraction of trials whose (seed, buggy, hit) verdicts match exactly.
int matching_trials(const harness::RepeatedResult& a,
                    const harness::RepeatedResult& b, int runs) {
  int matching = 0;
  for (int i = 0; i < runs; ++i) {
    const auto& x = a.trials[static_cast<std::size_t>(i)];
    const auto& y = b.trials[static_cast<std::size_t>(i)];
    if (x.seed == y.seed && x.buggy == y.buggy && x.hit == y.hit) ++matching;
  }
  return matching;
}

/// Historical mode: serial vs parallel under one clock policy.
int run_serial_vs_parallel(const bench::BenchConfig& config, int jobs) {
  harness::TextTable table({"Benchmark", "Serial(s)", "Parallel(s)", "Speedup",
                            "P(bug) ser/par", "P(hit) ser/par", "Seeds match",
                            "CI overlap"});
  bench::JsonReport report("trials", config.time_scale);

  double serial_total = 0.0;
  double parallel_total = 0.0;
  bool all_overlap = true;

  for (const harness::Table1Case& row : harness::table1_cases()) {
    apps::RunOptions options;
    options.pause = row.pause;
    options.work_scale = row.work_scale;
    options.stall_after = std::chrono::milliseconds(4000);
    options.breakpoints = true;
    options.clock = config.clock;

    const auto serial =
        harness::run_repeated(row.runner, options, config.runs);
    const auto parallel =
        harness::run_repeated_parallel(row.runner, options, config.runs, jobs);

    const int matching = matching_trials(serial, parallel, config.runs);
    const bool overlap =
        serial.bug_probability_ci().overlaps(parallel.bug_probability_ci()) &&
        serial.hit_probability_ci().overlaps(parallel.hit_probability_ci());
    all_overlap = all_overlap && overlap;
    serial_total += serial.wall_clock_s;
    parallel_total += parallel.wall_clock_s;

    const double speedup =
        parallel.wall_clock_s <= 0.0
            ? 0.0
            : serial.wall_clock_s / parallel.wall_clock_s;
    const std::string key = std::string(row.benchmark) + "/" + row.bug;
    table.add_row(
        {key, harness::fmt_seconds(serial.wall_clock_s),
         harness::fmt_seconds(parallel.wall_clock_s),
         harness::fmt_percent(speedup) + "x",
         harness::fmt_prob(serial.bug_probability()) + "/" +
             harness::fmt_prob(parallel.bug_probability()),
         harness::fmt_prob(serial.hit_probability()) + "/" +
             harness::fmt_prob(parallel.hit_probability()),
         std::to_string(matching) + "/" + std::to_string(config.runs),
         overlap ? "yes" : "NO"});
    report.add(key + "/serial_wall_clock", 1, serial.wall_clock_s, "s");
    report.add(key + "/parallel_wall_clock", jobs, parallel.wall_clock_s, "s");
    report.add(key + "/speedup", jobs, speedup, "x");
    report.add(key + "/bug_probability_serial", 1, serial.bug_probability(),
               "probability");
    report.add(key + "/bug_probability_parallel", jobs,
               parallel.bug_probability(), "probability");
    report.add(key + "/seeds_match", jobs,
               static_cast<double>(matching) / config.runs, "fraction");
  }

  const double total_speedup =
      parallel_total <= 0.0 ? 0.0 : serial_total / parallel_total;
  report.add("total/serial_wall_clock", 1, serial_total, "s");
  report.add("total/parallel_wall_clock", jobs, parallel_total, "s");
  report.add("total/speedup", jobs, total_speedup, "x");
  report.flush(config.json_path);

  table.print(std::cout);
  std::printf("\nTotal wall clock: serial %.3fs, parallel (%d jobs) %.3fs "
              "-> %.1fx.\n",
              serial_total, jobs, parallel_total, total_speedup);
  if (!all_overlap) {
    std::printf("FAIL: a serial/parallel probability interval pair does not "
                "overlap.\n");
    return 1;
  }
  return 0;
}

/// Scale for the scaled-clock baseline legs of the virtual comparison:
/// the suite default, so the baseline matches BENCH_trials.json numbers.
constexpr double kScaledBaselineScale = 0.02;

/// --clock=virtual mode: nominal-T virtual trials (serial and parallel)
/// against a scaled serial baseline.
int run_virtual_comparison(const bench::BenchConfig& config, int jobs) {
  harness::TextTable table({"Benchmark", "Scaled(s)", "Virt-ser(s)",
                            "Virt-par(s)", "Par speedup", "vs scaled",
                            "P(bug) sc/vi", "Virt par==ser", "CI overlap"});
  bench::JsonReport report("vtime", /*time_scale=*/1.0);

  double scaled_total = 0.0;
  double vserial_total = 0.0;
  double vparallel_total = 0.0;
  bool all_overlap = true;
  bool all_deterministic = true;

  for (const harness::Table1Case& row : harness::table1_cases()) {
    apps::RunOptions options;
    options.pause = row.pause;
    options.work_scale = row.work_scale;
    options.stall_after = std::chrono::milliseconds(4000);
    options.breakpoints = true;

    // Baseline: the historical serial scaled run (kernel waits at the
    // suite's default scale) — the reference the virtual probabilities
    // must agree with.
    options.clock = rt::ClockMode::kScaled;
    harness::RepeatedResult scaled;
    {
      rt::ScopedTimeScale scale(kScaledBaselineScale);
      scaled = harness::run_repeated(row.runner, options, config.runs);
    }

    // Virtual legs at the paper's nominal T (TimeScale is 1.0 here, and
    // the per-trial discrete-event clock makes the waits free anyway).
    options.clock = rt::ClockMode::kVirtual;
    const auto vserial =
        harness::run_repeated(row.runner, options, config.runs);
    const auto vparallel =
        harness::run_repeated_parallel(row.runner, options, config.runs, jobs);

    const int matching = matching_trials(vserial, vparallel, config.runs);
    const bool deterministic = matching == config.runs;
    all_deterministic = all_deterministic && deterministic;
    const bool overlap =
        scaled.bug_probability_ci().overlaps(vserial.bug_probability_ci()) &&
        scaled.hit_probability_ci().overlaps(vserial.hit_probability_ci());
    all_overlap = all_overlap && overlap;
    scaled_total += scaled.wall_clock_s;
    vserial_total += vserial.wall_clock_s;
    vparallel_total += vparallel.wall_clock_s;

    const double par_speedup =
        vparallel.wall_clock_s <= 0.0
            ? 0.0
            : vserial.wall_clock_s / vparallel.wall_clock_s;
    const double vs_scaled =
        vserial.wall_clock_s <= 0.0
            ? 0.0
            : scaled.wall_clock_s / vserial.wall_clock_s;
    const std::string key = std::string(row.benchmark) + "/" + row.bug;
    table.add_row(
        {key, harness::fmt_seconds(scaled.wall_clock_s),
         harness::fmt_seconds(vserial.wall_clock_s),
         harness::fmt_seconds(vparallel.wall_clock_s),
         harness::fmt_percent(par_speedup) + "x",
         harness::fmt_percent(vs_scaled) + "x",
         harness::fmt_prob(scaled.bug_probability()) + "/" +
             harness::fmt_prob(vserial.bug_probability()),
         deterministic ? "yes" : "NO",
         overlap ? "yes" : "NO"});
    report.add(key + "/scaled_serial_wall_clock", 1, scaled.wall_clock_s, "s");
    report.add(key + "/virtual_serial_wall_clock", 1, vserial.wall_clock_s,
               "s");
    report.add(key + "/virtual_parallel_wall_clock", jobs,
               vparallel.wall_clock_s, "s");
    report.add(key + "/speedup", jobs, par_speedup, "x");
    report.add(key + "/virtual_vs_scaled_speedup", 1, vs_scaled, "x");
    report.add(key + "/bug_probability_scaled", 1, scaled.bug_probability(),
               "probability");
    report.add(key + "/bug_probability_virtual", 1, vserial.bug_probability(),
               "probability");
    report.add(key + "/virtual_seeds_match", jobs,
               static_cast<double>(matching) / config.runs, "fraction");
  }

  const double total_par_speedup =
      vparallel_total <= 0.0 ? 0.0 : vserial_total / vparallel_total;
  const double total_vs_scaled =
      vserial_total <= 0.0 ? 0.0 : scaled_total / vserial_total;
  report.add("total/scaled_serial_wall_clock", 1, scaled_total, "s");
  report.add("total/virtual_serial_wall_clock", 1, vserial_total, "s");
  report.add("total/virtual_parallel_wall_clock", jobs, vparallel_total, "s");
  report.add("total/speedup", jobs, total_par_speedup, "x");
  report.add("total/virtual_vs_scaled_speedup", 1, total_vs_scaled, "x");
  report.flush(config.json_path);

  table.print(std::cout);
  std::printf("\nTotal wall clock: scaled serial %.3fs, virtual serial "
              "%.3fs, virtual parallel (%d jobs) %.3fs -> parallel speedup "
              "%.2fx, virtual vs scaled %.1fx (at nominal T).\n",
              scaled_total, vserial_total, jobs, vparallel_total,
              total_par_speedup, total_vs_scaled);
  int failures = 0;
  if (!all_overlap) {
    std::printf("FAIL: a scaled/virtual probability interval pair does not "
                "overlap.\n");
    ++failures;
  }
  if (!all_deterministic) {
    std::printf("FAIL: serial and parallel virtual legs disagree on a "
                "per-seed verdict (virtual trials must be deterministic).\n");
    ++failures;
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Serial vs parallel trial scheduler ===\n");
  auto config = bench::setup(argc, argv, /*default_runs=*/16);
  // This bench exists to exercise the parallel path: without an explicit
  // --trial-jobs, compare against 8 workers.
  const int jobs = config.jobs > 1 ? config.jobs : 8;

  if (config.clock == rt::ClockMode::kVirtual) {
    return run_virtual_comparison(config, jobs);
  }
  return run_serial_vs_parallel(config, jobs);
}
