// Serial vs parallel trial execution: the same repeated-trial batches
// (Table 1 rows) run once through the serial scheduler and once through
// run_repeated_parallel, comparing
//
//   * wall clock     — the point of the parallel scheduler: trials are
//     dominated by scaled nominal pauses, so N workers overlap N sleeps;
//   * determinism    — trial i carries seed base+i on both paths, so the
//     per-seed verdict streams are comparable seed by seed;
//   * probabilities  — hit/bug rates must agree statistically (95%
//     Wilson intervals overlap); timing-sensitive replicas can flip a
//     marginal race under hardware contention, so exact-count equality
//     is not required.
//
// Exits non-zero when any row's serial and parallel intervals fail to
// overlap — CI runs this as a smoke check of the parallel scheduler.

#include <cstdio>
#include <iostream>
#include <string>

#include "bench_util.h"
#include "harness/experiment.h"
#include "harness/registry.h"

int main(int argc, char** argv) {
  using namespace cbp;
  std::printf("=== Serial vs parallel trial scheduler ===\n");
  auto config = bench::setup(argc, argv, /*default_runs=*/16);
  // This bench exists to exercise the parallel path: without an explicit
  // --trial-jobs, compare against 8 workers.
  const int jobs = config.jobs > 1 ? config.jobs : 8;

  harness::TextTable table({"Benchmark", "Serial(s)", "Parallel(s)", "Speedup",
                            "P(bug) ser/par", "P(hit) ser/par", "Seeds match",
                            "CI overlap"});
  bench::JsonReport report("trials", config.time_scale);

  double serial_total = 0.0;
  double parallel_total = 0.0;
  bool all_overlap = true;

  for (const harness::Table1Case& row : harness::table1_cases()) {
    apps::RunOptions options;
    options.pause = row.pause;
    options.work_scale = row.work_scale;
    options.stall_after = std::chrono::milliseconds(4000);
    options.breakpoints = true;

    const auto serial =
        harness::run_repeated(row.runner, options, config.runs);
    const auto parallel =
        harness::run_repeated_parallel(row.runner, options, config.runs, jobs);

    int matching = 0;
    for (int i = 0; i < config.runs; ++i) {
      const auto& s = serial.trials[static_cast<std::size_t>(i)];
      const auto& p = parallel.trials[static_cast<std::size_t>(i)];
      if (s.seed == p.seed && s.buggy == p.buggy && s.hit == p.hit) ++matching;
    }
    const bool overlap =
        serial.bug_probability_ci().overlaps(parallel.bug_probability_ci()) &&
        serial.hit_probability_ci().overlaps(parallel.hit_probability_ci());
    all_overlap = all_overlap && overlap;
    serial_total += serial.wall_clock_s;
    parallel_total += parallel.wall_clock_s;

    const double speedup =
        parallel.wall_clock_s <= 0.0
            ? 0.0
            : serial.wall_clock_s / parallel.wall_clock_s;
    const std::string key = std::string(row.benchmark) + "/" + row.bug;
    table.add_row(
        {key, harness::fmt_seconds(serial.wall_clock_s),
         harness::fmt_seconds(parallel.wall_clock_s),
         harness::fmt_percent(speedup) + "x",
         harness::fmt_prob(serial.bug_probability()) + "/" +
             harness::fmt_prob(parallel.bug_probability()),
         harness::fmt_prob(serial.hit_probability()) + "/" +
             harness::fmt_prob(parallel.hit_probability()),
         std::to_string(matching) + "/" + std::to_string(config.runs),
         overlap ? "yes" : "NO"});
    report.add(key + "/serial_wall_clock", 1, serial.wall_clock_s, "s");
    report.add(key + "/parallel_wall_clock", jobs, parallel.wall_clock_s, "s");
    report.add(key + "/speedup", jobs, speedup, "x");
    report.add(key + "/bug_probability_serial", 1, serial.bug_probability(),
               "probability");
    report.add(key + "/bug_probability_parallel", jobs,
               parallel.bug_probability(), "probability");
    report.add(key + "/seeds_match", jobs,
               static_cast<double>(matching) / config.runs, "fraction");
  }

  const double total_speedup =
      parallel_total <= 0.0 ? 0.0 : serial_total / parallel_total;
  report.add("total/serial_wall_clock", 1, serial_total, "s");
  report.add("total/parallel_wall_clock", jobs, parallel_total, "s");
  report.add("total/speedup", jobs, total_speedup, "x");
  report.flush(config.json_path);

  table.print(std::cout);
  std::printf("\nTotal wall clock: serial %.3fs, parallel (%d jobs) %.3fs "
              "-> %.1fx.\n",
              serial_total, jobs, parallel_total, total_speedup);
  if (!all_overlap) {
    std::printf("FAIL: a serial/parallel probability interval pair does not "
                "overlap.\n");
    return 1;
  }
  return 0;
}
