// Ablation: concurrent breakpoints vs record/replay (the paper's §7
// positioning, quantified on our own substrates).
//
// Subject: a two-thread counter workload with one racy lost-update
// window.  Three ways to make the bug reproducible:
//   * breakpoint  — two trigger_here calls at the conflict (this paper);
//   * record      — run with full access/lock recording (the trace that
//                   replay needs), bug forced once via the breakpoint;
//   * replay      — re-run under the recorded trace, breakpoints off.
//
// Reported per technique: P(bug reproduced), runtime, and the mechanism
// footprint (how many program events the mechanism had to intercept —
// breakpoints touch 2 sites; replay gates EVERY shared access).

#include <cstdio>
#include <iostream>
#include <memory>
#include <thread>

#include "bench_util.h"
#include "harness/experiment.h"
#include "instrument/shared_var.h"
#include "replay/recorder.h"
#include "replay/replayer.h"
#include "runtime/latch.h"

namespace {

using namespace cbp;

constexpr int kOpsPerThread = 40;

/// The workload: each thread does kOpsPerThread increments; one chosen
/// increment per thread goes through the racy (breakpoint-widened)
/// window.  Returns final counter value (bug <=> < 2*kOpsPerThread).
int run_workload(bool armed, instr::Listener* listener, int* events_out) {
  instr::SharedVar<int> counter{0};
  std::unique_ptr<instr::ScopedListener> registration;
  if (listener != nullptr) {
    registration = std::make_unique<instr::ScopedListener>(*listener);
  }
  rt::StartGate gate;
  auto worker = [&](int role) {
    if (auto* replayer = dynamic_cast<replay::Replayer*>(listener)) {
      replayer->bind_this_thread(role);
    }
    if (auto* recorder = dynamic_cast<replay::Recorder*>(listener)) {
      recorder->bind_this_thread(role);
    }
    gate.wait();
    for (int i = 0; i < kOpsPerThread; ++i) {
      const int value = counter.read();
      if (armed && i == kOpsPerThread / 2) {
        ConflictTrigger trigger("ablation-race", counter.address());
        trigger.trigger_here(true, std::chrono::milliseconds(200));
      }
      counter.write(value + 1);
    }
  };
  std::thread a(worker, 0);
  std::thread b(worker, 1);
  gate.open();
  a.join();
  b.join();
  if (events_out != nullptr) *events_out = 2 * 2 * kOpsPerThread;
  return counter.peek();
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Ablation: breakpoint vs record/replay for bug "
              "reproduction ===\n");
  const auto config = bench::setup(argc, argv, /*default_runs=*/30);

  harness::TextTable table({"Technique", "P(bug)", "Mean run(s)",
                            "Intercepted events", "Notes"});
  const int expected = 2 * kOpsPerThread;

  // --- plain stress ---------------------------------------------------------
  {
    Config::set_enabled(false);
    int buggy = 0;
    rt::Stopwatch clock;
    for (int i = 0; i < config.runs; ++i) {
      if (run_workload(false, nullptr, nullptr) < expected) ++buggy;
    }
    table.add_row({"stress", harness::fmt_prob(1.0 * buggy / config.runs),
                   harness::fmt_seconds(clock.elapsed_seconds() /
                                        config.runs),
                   "0", "bug essentially never recurs"});
  }

  // --- breakpoint -------------------------------------------------------------
  {
    Config::set_enabled(true);
    int buggy = 0;
    rt::Stopwatch clock;
    for (int i = 0; i < config.runs; ++i) {
      Engine::instance().reset();
      if (run_workload(true, nullptr, nullptr) < expected) ++buggy;
    }
    table.add_row({"breakpoint (this paper)",
                   harness::fmt_prob(1.0 * buggy / config.runs),
                   harness::fmt_seconds(clock.elapsed_seconds() /
                                        config.runs),
                   "2", "two trigger_here sites"});
  }

  // --- record once, replay many ----------------------------------------------
  replay::Trace trace;
  {
    Config::set_enabled(true);
    Engine::instance().reset();
    replay::Recorder recorder;
    int events = 0;
    rt::Stopwatch clock;
    const int result = run_workload(true, &recorder, &events);
    trace = recorder.trace();
    table.add_row({"record (one buggy run)",
                   result < expected ? "1.00" : "0.00",
                   harness::fmt_seconds(clock.elapsed_seconds()),
                   std::to_string(trace.size()),
                   "full access trace captured"});
  }
  {
    Config::set_enabled(false);
    int buggy = 0;
    int diverged = 0;
    rt::Stopwatch clock;
    for (int i = 0; i < config.runs; ++i) {
      replay::Replayer replayer(trace);
      if (run_workload(false, &replayer, nullptr) < expected) ++buggy;
      diverged += replayer.diverged() ? 1 : 0;
    }
    table.add_row({"replay (no breakpoints)",
                   harness::fmt_prob(1.0 * buggy / config.runs),
                   harness::fmt_seconds(clock.elapsed_seconds() /
                                        config.runs),
                   std::to_string(trace.size()),
                   std::to_string(diverged) + " divergences"});
  }
  Config::set_enabled(true);

  table.print(std::cout);
  std::printf("\nBoth mechanisms reproduce the bug ~always; the breakpoint "
              "intercepts 2 events and needs no recording, the replayer "
              "gates every shared access of every run (%zu here) and "
              "needs the trace — the paper's light-weight argument.\n",
              trace.size());
  return 0;
}
