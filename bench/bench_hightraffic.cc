// Armed-path overhead at production load (DESIGN.md §5i): the sharded-KV
// replica serves a Zipfian-distributed million-key keyspace for 10^5+
// client sessions on a worker pool, with the two seeded breakpoints
// armed the whole time.  Four configurations × {1,2,4} threads:
//
//   off             — no trigger calls compiled into the op path
//                     (instrumentation-off floor)
//   specs-disabled  — probes present, spec marks both names off (the
//                     per-site cached fast path)
//   armed-unmatched — breakpoints armed at full load but never matching:
//                     the reader probe local-rejects on every quiescent
//                     get, the writer probe bounds out on every put.
//                     This is the configuration production pays for, and
//                     the SLO gate lives here: at 4 threads its
//                     throughput must stay >= 90% of instrumentation-off.
//   armed-matching  — resizes and evictions actually occur, the
//                     breakpoints hit up to their spec bound, pauses and
//                     rendezvous included (what a debugging session costs).
//
// After the throughput matrix, the full run repeats the paper-style
// reproduction check on both seeded bugs: `runs` armed trials each, the
// observed artifact probability's 95% Wilson interval must overlap the
// predicted one (the breakpoint hit probability — a hit parks the racing
// pair inside the window, so hits predict artifacts), and the unarmed
// control trials must stay near zero (at most 1 in 10: the unarmed
// window is preemption-wide on a loaded machine, and the paper's own
// control columns are small but nonzero).
//
// --quick trims the matrix to {1,2} threads on a scaled-down keyspace
// and skips the SLO/repro gates (CI runs it three times and gates the
// rows through tools/perf_gate.py against BENCH_hightraffic.json; rows
// get distinct `hightraffic-quick/` names so the two configurations
// never cross-match).  Exit status: 0 when every enabled gate passes,
// 1 on an SLO or reproduction-interval failure, 2 on a usage error.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "apps/kvstore/kvstore.h"
#include "bench_util.h"
#include "harness/experiment.h"

namespace {

using namespace cbp;
using apps::kvstore::Mode;

const char* mode_name(Mode mode) {
  switch (mode) {
    case Mode::kOff: return "off";
    case Mode::kSpecsDisabled: return "specs-disabled";
    case Mode::kArmedUnmatched: return "armed-unmatched";
    case Mode::kArmedMatching: return "armed-matching";
  }
  return "?";
}

/// Extracts `--quick` from argv (compacted away like the bench_util
/// flags so positional parsing still works).
bool take_quick_flag(int& argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      return true;
    }
  }
  return false;
}

struct ReproSummary {
  int artifact_runs = 0;  ///< armed trials where the bug manifested
  int hit_runs = 0;       ///< armed trials where the breakpoint hit
  int control_runs = 0;   ///< unarmed trials where the bug manifested
  bool in_interval = false;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace cbp;
  using namespace std::chrono_literals;
  const bool quick = take_quick_flag(argc, argv);
  std::printf("=== High-traffic sharded KV: armed-path overhead at "
              "production load ===\n");
  auto config = bench::setup(argc, argv, /*default_runs=*/10,
                             /*default_scale=*/0.2);
  if (config.clock == rt::ClockMode::kVirtual) {
    std::printf("(note: the KV workload measures real wall time; "
                "--clock=virtual falls back to scaled)\n");
    config.clock = rt::ClockMode::kScaled;
    config.time_scale = 0.2;
    rt::TimeScale::set(config.time_scale);
  }
  // The seeded-race choreography (resizer poisons, then the stale reader
  // scans) needs the resolution order enforced on a coarser grain than
  // the 200us bench default; match the repro tests' 2ms.
  Config::set_order_delay(2ms);

  apps::kvstore::WorkloadOptions base;
  if (quick) {
    base.keys = 1u << 16;
    base.sessions = 1u << 13;
    base.ops_per_thread = 1u << 18;
  } else {
    base.keys = 1u << 20;      // million-key Zipfian keyspace
    base.sessions = 1u << 17;  // 131072 client sessions on the pool
    base.ops_per_thread = 1u << 20;
  }
  base.work_per_op = 160;  // per-request parse/serialize stand-in
  base.pause = 100ms;
  base.seed = 1;

  const std::vector<int> thread_counts =
      quick ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4};
  const int reps = quick ? 2 : 3;
  const std::string prefix = quick ? "hightraffic-quick" : "hightraffic";
  const std::vector<Mode> modes = {Mode::kOff, Mode::kSpecsDisabled,
                                   Mode::kArmedUnmatched,
                                   Mode::kArmedMatching};

  // Discarded warm-up: cold caches and the CPU frequency ramp otherwise
  // land entirely on the first measured combo.
  {
    auto warmup = base;
    warmup.mode = Mode::kOff;
    warmup.threads = thread_counts.back();
    apps::kvstore::run_workload(warmup);
  }

  // Interleaved repetitions, per-cell min: each rep sweeps the whole
  // matrix in order, so slow drift (frequency scaling, a background
  // task) hits every mode rather than whichever combo ran first, and
  // the min across reps estimates true cost (interference on a shared
  // machine only ever adds time — the perf gate's reasoning).
  std::vector<apps::kvstore::WorkloadResult> best(modes.size() *
                                                  thread_counts.size());
  for (int rep = 0; rep < reps; ++rep) {
    std::size_t cell = 0;
    for (const Mode mode : modes) {
      for (const int threads : thread_counts) {
        auto options = base;
        options.mode = mode;
        options.threads = threads;
        std::fprintf(stderr, "  rep %d/%d: %s/threads:%d ...\n", rep + 1,
                     reps, mode_name(mode), threads);
        const auto result = apps::kvstore::run_workload(options);
        if (rep == 0 || result.ns_per_op < best[cell].ns_per_op) {
          best[cell] = result;
        }
        ++cell;
      }
    }
  }

  bench::JsonReport report(quick ? "hightraffic-quick" : "hightraffic",
                           config.time_scale);
  harness::TextTable table({"Mode", "Threads", "ns/op", "Mops/s", "Calls",
                            "Hits", "Resizes"});
  double off_ns_4t = 0.0;
  double armed_unmatched_ns_4t = 0.0;
  const int slo_threads = thread_counts.back();
  {
    std::size_t cell = 0;
    for (const Mode mode : modes) {
      for (const int threads : thread_counts) {
        const auto& result = best[cell++];
        char ns_buf[32], mops_buf[32];
        std::snprintf(ns_buf, sizeof ns_buf, "%.1f", result.ns_per_op);
        std::snprintf(mops_buf, sizeof mops_buf, "%.2f",
                      result.ns_per_op > 0 ? 1e3 / result.ns_per_op : 0.0);
        table.add_row({mode_name(mode), std::to_string(threads), ns_buf,
                       mops_buf, std::to_string(result.trigger_calls),
                       std::to_string(result.hits),
                       std::to_string(result.resizes)});
        report.add(prefix + "/" + mode_name(mode) +
                       "/threads:" + std::to_string(threads),
                   threads, result.ns_per_op, "ns_per_op");
        if (threads == slo_threads) {
          if (mode == Mode::kOff) off_ns_4t = result.ns_per_op;
          if (mode == Mode::kArmedUnmatched) {
            armed_unmatched_ns_4t = result.ns_per_op;
          }
        }
      }
    }
  }
  table.print(std::cout);

  if (quick) {
    std::printf("\n(--quick: SLO and reproduction gates skipped; CI gates "
                "these rows via tools/perf_gate.py)\n");
    report.flush(config.json_path);
    return 0;
  }

  // --- SLO gate: armed-but-unmatched must keep >= 90% of the
  // instrumentation-off throughput at full parallelism. -----------------
  const double slo_ratio =
      armed_unmatched_ns_4t > 0 ? off_ns_4t / armed_unmatched_ns_4t : 0.0;
  const bool slo_ok = slo_ratio >= 0.90;
  std::printf("\nSLO: armed-unmatched throughput at %d threads = %.1f%% of "
              "instrumentation-off (gate: >= 90%%) -> %s\n",
              slo_threads, slo_ratio * 100.0, slo_ok ? "OK" : "FAIL");
  report.add("hightraffic/slo-armed-vs-off", slo_threads, slo_ratio,
             "throughput_ratio");

  // --- Reproduction check: both seeded bugs, paper-style Wilson
  // intervals, unarmed controls. ----------------------------------------
  apps::RunOptions ropts;
  ropts.pause = 300ms;
  // Controls gate on "near zero", not exactly zero — see the header
  // comment.  1-in-10 at the default runs; scales with --runs.
  const int control_max = config.runs / 10;
  const auto repro = [&](const char* label, const char* bp_name,
                         apps::RunOutcome (*run)(const apps::RunOptions&)) {
    ReproSummary s;
    for (int i = 0; i < config.runs; ++i) {
      Engine::instance().reset();
      auto options = ropts;
      options.breakpoints = true;
      options.seed = 1 + static_cast<std::uint64_t>(i);
      s.artifact_runs += run(options).buggy() ? 1 : 0;
      s.hit_runs += Engine::instance().stats(bp_name).hits > 0 ? 1 : 0;
    }
    for (int i = 0; i < config.runs; ++i) {
      Engine::instance().reset();
      auto options = ropts;
      options.breakpoints = false;
      options.seed = 1 + static_cast<std::uint64_t>(i);
      s.control_runs += run(options).buggy() ? 1 : 0;
    }
    const auto observed = harness::wilson_interval(s.artifact_runs,
                                                   config.runs);
    const auto predicted = harness::wilson_interval(s.hit_runs, config.runs);
    s.in_interval = observed.overlaps(predicted);
    std::printf("%s: artifact %d/%d [%s, %s], hit %d/%d [%s, %s], control "
                "%d/%d -> %s\n",
                label, s.artifact_runs, config.runs,
                harness::fmt_prob(observed.low).c_str(),
                harness::fmt_prob(observed.high).c_str(), s.hit_runs,
                config.runs, harness::fmt_prob(predicted.low).c_str(),
                harness::fmt_prob(predicted.high).c_str(), s.control_runs,
                config.runs,
                s.in_interval && s.control_runs <= control_max ? "OK"
                                                               : "FAIL");
    report.add(std::string("hightraffic/") + label + "-artifact-prob", 2,
               static_cast<double>(s.artifact_runs) / config.runs,
               "probability");
    report.add(std::string("hightraffic/") + label + "-hit-prob", 2,
               static_cast<double>(s.hit_runs) / config.runs, "probability");
    report.add(std::string("hightraffic/") + label + "-control-prob", 2,
               static_cast<double>(s.control_runs) / config.runs,
               "probability");
    return s;
  };

  std::printf("\nReproduction (runs=%d armed + %d control per bug):\n",
              config.runs, config.runs);
  const ReproSummary resize =
      repro("resize-race", apps::kvstore::kResizeRace,
            apps::kvstore::run_resize_race);
  const ReproSummary evict =
      repro("evict-toctou", apps::kvstore::kEvictToctou,
            apps::kvstore::run_evict_toctou);

  report.flush(config.json_path);

  const bool repro_ok =
      resize.in_interval && resize.control_runs <= control_max &&
      evict.in_interval && evict.control_runs <= control_max;
  std::printf("\n%s\n", slo_ok && repro_ok
                            ? "hightraffic gates passed (SLO + both "
                              "reproduction intervals)."
                            : "HIGHTRAFFIC GATE FAILURE");
  return slo_ok && repro_ok ? 0 : 1;
}
