// Reproduces Table 2 of the paper: the C/C++ server bugs, the number of
// concurrent breakpoints needed, and the mean time to error when the
// workload is re-executed continuously with breakpoints armed.
//
// Absolute MTTE differs from the paper (our replicas process a request
// in microseconds, their servers in milliseconds); the reproduced shape
// is "every bug is reproduced within a few (scaled) seconds".

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "harness/experiment.h"
#include "harness/registry.h"

int main(int argc, char** argv) {
  using namespace cbp;
  std::printf("=== Table 2: C/C++ program bugs, mean time to error with "
              "concurrent breakpoints ===\n");
  const auto config = bench::setup(argc, argv, /*default_runs=*/10);

  harness::TextTable table({"Benchmark", "LoC", "Error", "MTTE(s)",
                            "Paper MTTE(s)", "#CBR", "Errors/Runs",
                            "Comments"});
  bench::JsonReport report("table2", config.time_scale);

  for (const harness::Table2Case& row : harness::table2_cases()) {
    apps::RunOptions options;
    options.pause = std::chrono::milliseconds(100);
    options.stall_after = std::chrono::milliseconds(4000);
    options.breakpoints = true;
    options.clock = config.clock;

    const auto mtte = harness::measure_mtte_parallel(
        row.runner, options,
        /*errors_wanted=*/config.runs,
        /*max_iterations=*/config.runs * 50, config.jobs);

    table.add_row(
        {row.benchmark, row.paper_loc, row.error,
         harness::fmt_seconds(mtte.mtte_s),
         harness::fmt_seconds(row.paper_mtte_s),
         std::to_string(row.breakpoints),
         std::to_string(mtte.errors) + "/" + std::to_string(mtte.iterations),
         row.comment});
    report.add(row.benchmark + "/mtte", config.jobs, mtte.mtte_s, "s");
    report.add(row.benchmark + "/errors", config.jobs, mtte.errors, "count");
    report.add(row.benchmark + "/iterations", config.jobs, mtte.iterations,
               "count");
  }

  report.flush(config.json_path);
  table.print(std::cout);
  std::printf("\n#CBR = number of concurrent breakpoints required to make "
              "the bug repeatedly reproducible (as inserted in the "
              "replica).\n");
  return 0;
}
